"""Crash-consistent campaign orchestrator.

A *campaign* is a full sweep grid (see :mod:`repro.campaign.plan`) run
under write-ahead discipline: every decision is journaled durably
(:mod:`repro.campaign.journal`) before it is acted on, every result lands
in the sweep runner's content-addressed cache, and every artifact is
published atomically. The consequence is a single, strong guarantee:

    **a campaign killed at any instant — SIGKILL included — resumes to
    final artifacts byte-identical to an uninterrupted run.**

The pieces, and who handles which failure:

* ``journal.jsonl`` — what was planned, dispatched, finished. A torn tail
  from a killed append is quarantined and truncated on open; completed
  cells are never re-simulated because the cache answers them.
* ``cache/`` — content-addressed results (:func:`repro.analysis.runner.
  job_key`); corrupt entries self-quarantine and re-simulate.
* ``campaign.lock`` — one orchestrator per directory; a SIGKILLed owner's
  lock is reclaimed by pid death (:mod:`repro.utils.locks`).
* ``heartbeats/`` — worker and orchestrator beacons for the watchdog
  (:mod:`repro.campaign.watchdog`).
* SIGTERM/SIGINT — handled signal-safely: the handler only sets a flag;
  the dispatch loop stops submitting, drains in-flight jobs, journals a
  ``drain`` record, writes a resumable manifest, and exits ``128+signum``.
  SIGKILL needs no handler *by design*: recovery subsumes it.

Layout of a campaign directory::

    journal.jsonl   WAL (plus journal.jsonl.torn after a crashed append)
    campaign.lock   orchestrator mutual exclusion
    heartbeats/     liveness beacons
    cache/          content-addressed results
    telemetry/      per-cell epoch streams      (telemetry campaigns)
    checkpoints/    shared warm images + locks  (checkpoint campaigns)
    manifest.json   resumable progress summary  (atomic, always valid)
    results.json    final per-cell metrics      (atomic, deterministic)
    report.txt      rendered summary table      (atomic, deterministic)
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.chaos import CampaignFaultInjector
from repro.analysis.report import format_table
from repro.analysis.runner import RetryPolicy, SweepJobError, SweepRunner
from repro.analysis.scaling import SCALES
from repro.campaign.journal import CampaignJournal, recover_journal
from repro.campaign.plan import (
    DEFAULT_MECHANISMS,
    CampaignCell,
    cell_config,
    cell_traces,
    plan_cells,
    plan_fingerprint,
)
from repro.campaign.watchdog import (
    heartbeat_dir,
    orchestrator_beacon_path,
    reap_dead_beacons,
    scan_heartbeats,
)
from repro.utils.atomic import atomic_write_json, atomic_write_text
from repro.utils.heartbeat import write_heartbeat
from repro.utils.locks import FileLock, LockHeldError
from repro.workloads.mix import mix_table_fingerprint, paper_mix_count

#: Bump when the manifest schema changes.
MANIFEST_FORMAT = 1

#: Bump when the results schema changes.
RESULTS_FORMAT = 1

#: Orchestrator lock staleness TTL (backstop; pid death reclaims fast).
CAMPAIGN_LOCK_STALE_SECONDS = 900.0

JOURNAL_NAME = "journal.jsonl"
LOCK_NAME = "campaign.lock"
MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.json"
REPORT_NAME = "report.txt"


class CampaignError(RuntimeError):
    """A campaign directory cannot be created, opened, or safely resumed."""


def journal_path(directory: str) -> str:
    return os.path.join(directory, JOURNAL_NAME)


def lock_path(directory: str) -> str:
    return os.path.join(directory, LOCK_NAME)


def manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def results_path(directory: str) -> str:
    return os.path.join(directory, RESULTS_NAME)


def report_path(directory: str) -> str:
    return os.path.join(directory, REPORT_NAME)


def result_digest(result_dict: Dict) -> str:
    """Content hash of one cell's result (journaled as the artifact hash)."""
    return hashlib.sha256(
        json.dumps(result_dict, sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a campaign (stored in the journal header).

    ``benchmarks`` must be concrete (the CLI resolves "all" before
    planning) so the plan fingerprint pins the exact grid.  ``workers`` and
    ``ingest_dir`` are runtime knobs: they ride along for convenience but
    are excluded from the fingerprint, so a resume may change parallelism
    or point at a relocated trace registry freely (the registry *contents*
    stay pinned — each ingested cell records its trace's sha256).

    ``full_width`` switches multi-core counts to the paper's complete
    102/259/120 mix tables and adds the alone-IPC normalizer cells;
    ``shards`` >= 2 splits each long run into that many epoch segments
    stitched back together (see :mod:`repro.checkpoint.shard`); ``tier``
    records which preset produced this config.
    """

    scale: str = "quick"
    benchmarks: Tuple[str, ...] = ()
    mechanisms: Tuple[str, ...] = DEFAULT_MECHANISMS
    core_counts: Tuple[int, ...] = (1,)
    refs: Optional[int] = None
    telemetry: bool = False
    epoch_cycles: int = 5_000
    checkpoint: bool = False
    workers: int = 0
    tier: Optional[str] = None
    full_width: bool = False
    shards: int = 0
    sensitivity: Tuple[int, ...] = ()
    sensitivity_benchmarks: Tuple[str, ...] = ()
    ingested: Tuple[Tuple[str, str], ...] = ()
    ingest_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; choose from {sorted(SCALES)}"
            )
        if not self.benchmarks and 1 in self.core_counts:
            raise ValueError("benchmarks must be resolved before planning")
        if self.telemetry and self.checkpoint:
            raise ValueError(
                "telemetry and checkpoint campaigns are mutually exclusive "
                "(fork-from-warm epoch streams would be full of "
                "discontinuities); run two campaigns"
            )
        if self.shards < 0 or self.shards == 1:
            raise ValueError(
                f"shards must be 0 (whole runs) or >= 2, got {self.shards}"
            )
        if self.shards and (self.telemetry or self.checkpoint):
            raise ValueError(
                "sharded runs cannot stream telemetry or fork from warm "
                "images (each shard re-warms independently); pick one"
            )
        if self.sensitivity and not self.sensitivity_benchmarks:
            raise ValueError(
                "sensitivity sweep requested without benchmarks to sweep"
            )
        if self.full_width:
            for cores in self.core_counts:
                if cores != 1:
                    paper_mix_count(cores)  # raises for unknown tables
        if self.ingested and self.ingest_dir is None:
            raise ValueError(
                "ingested traces require an ingest_dir (the trace registry)"
            )

    def to_dict(self) -> Dict:
        data = {
            "scale": self.scale,
            "benchmarks": list(self.benchmarks),
            "mechanisms": list(self.mechanisms),
            "core_counts": list(self.core_counts),
            "refs": self.refs,
            "telemetry": self.telemetry,
            "epoch_cycles": self.epoch_cycles,
            "checkpoint": self.checkpoint,
            "workers": self.workers,
        }
        # New fields appear only when set so pre-existing journals (and
        # their fingerprints) stay byte-identical.
        if self.tier is not None:
            data["tier"] = self.tier
        if self.full_width:
            data["full_width"] = True
        if self.shards:
            data["shards"] = self.shards
        if self.sensitivity:
            data["sensitivity"] = list(self.sensitivity)
        if self.sensitivity_benchmarks:
            data["sensitivity_benchmarks"] = list(self.sensitivity_benchmarks)
        if self.ingested:
            data["ingested"] = [[name, sha] for name, sha in self.ingested]
        if self.ingest_dir is not None:
            data["ingest_dir"] = self.ingest_dir
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignConfig":
        return cls(
            scale=data["scale"],
            benchmarks=tuple(data["benchmarks"]),
            mechanisms=tuple(data["mechanisms"]),
            core_counts=tuple(data["core_counts"]),
            refs=data.get("refs"),
            telemetry=data.get("telemetry", False),
            epoch_cycles=data.get("epoch_cycles", 5_000),
            checkpoint=data.get("checkpoint", False),
            workers=data.get("workers", 0),
            tier=data.get("tier"),
            full_width=data.get("full_width", False),
            shards=data.get("shards", 0),
            sensitivity=tuple(data.get("sensitivity", ())),
            sensitivity_benchmarks=tuple(
                data.get("sensitivity_benchmarks", ())
            ),
            ingested=tuple(
                (name, sha) for name, sha in data.get("ingested", ())
            ),
            ingest_dir=data.get("ingest_dir"),
        )

    def plan_identity(self) -> Dict:
        """The fingerprinted subset: what is simulated and how it is keyed.

        Multi-core plans additionally pin each mix table's *composition*
        fingerprint: cell records alone pin names and indices, but a
        benchmark-pool drift that keeps names stable would silently swap
        traces — the table fingerprint catches it at resume.
        """
        identity = self.to_dict()
        identity.pop("workers")
        identity.pop("ingest_dir", None)
        scale = SCALES[self.scale]
        tables = {}
        for cores in self.core_counts:
            if cores == 1:
                continue
            count = paper_mix_count(cores) if self.full_width else None
            tables[str(cores)] = mix_table_fingerprint(
                scale.mix_specs(cores, count),
                self.refs or scale.refs_per_core_multi,
                footprint_divisor=scale.divisor,
            )
        if tables:
            identity["mix_tables"] = tables
        return identity

    def plan(self) -> List[CampaignCell]:
        return plan_cells(
            SCALES[self.scale],
            benchmarks=self.benchmarks,
            mechanisms=self.mechanisms,
            core_counts=self.core_counts,
            full_width=self.full_width,
            ingested=self.ingested,
            sensitivity=self.sensitivity,
            sensitivity_benchmarks=self.sensitivity_benchmarks,
        )


@dataclass
class CampaignOutcome:
    """What one ``run()`` call achieved."""

    status: str  # "complete" | "failed" | "drained"
    exit_code: int
    cells_total: int
    cells_done: int
    cells_failed: int
    pending: List[str] = field(default_factory=list)
    signal: Optional[int] = None
    sweep_summary: str = ""


def stderr_progress(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


class Campaign:
    """One campaign directory, exclusively held while this object is open.

    Use :meth:`create` for a fresh directory, :meth:`open` to recover and
    resume an existing one; both acquire ``campaign.lock`` (reclaiming a
    dead owner's). Always :meth:`close` (or use as a context manager).
    """

    def __init__(
        self,
        directory: str,
        config: CampaignConfig,
        cells: List[CampaignCell],
        journal: CampaignJournal,
        lock: FileLock,
        done: Dict[str, Dict],
        failed_cells: List[str],
        completed: bool,
    ) -> None:
        self.directory = directory
        self.config = config
        self.cells = cells
        self.journal = journal
        self.lock = lock
        self.done = done  # cell_id -> {"key": ..., "digest": ...}
        self.failed_cells = failed_cells  # forensic: had a failure record
        self.completed = completed
        self.recovered_torn: Optional[str] = None
        self.locks_reclaimed = lock.reclaimed
        self._drain_signal: Optional[int] = None

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, directory: str, config: CampaignConfig) -> "Campaign":
        """Plan a fresh campaign: journal header + one record per cell.

        The trailing ``planned`` record is the plan's commit point: a
        journal without it died mid-plan and is refused by :meth:`open`
        (nothing has been simulated yet — delete the directory and
        re-plan).
        """
        os.makedirs(directory, exist_ok=True)
        path = journal_path(directory)
        if os.path.exists(path):
            raise CampaignError(
                f"{directory}: journal already exists; open/resume it "
                "instead of re-planning"
            )
        lock = cls._acquire_lock(directory)
        try:
            cells = config.plan()
            journal = CampaignJournal(path)
            journal.append(
                "header",
                format=1,
                config=config.to_dict(),
                fingerprint=plan_fingerprint(config.plan_identity(), cells),
                cell_count=len(cells),
            )
            for cell in cells:
                journal.append("cell", **cell.to_dict())
            journal.append("planned")
        except BaseException:
            lock.release()
            raise
        return cls(
            directory, config, cells, journal, lock,
            done={}, failed_cells=[], completed=False,
        )

    @classmethod
    def open(cls, directory: str) -> "Campaign":
        """Recover an existing campaign: quarantine any torn journal tail,
        rebuild done/pending state, verify the plan fingerprint."""
        path = journal_path(directory)
        if not os.path.exists(path):
            raise CampaignError(
                f"{directory}: no campaign journal; plan one first"
            )
        lock = cls._acquire_lock(directory)
        try:
            scan, torn_path = recover_journal(path)
            header = scan.header
            config = CampaignConfig.from_dict(header["config"])
            cells: List[CampaignCell] = []
            done: Dict[str, Dict] = {}
            failed_cells: List[str] = []
            planned = False
            completed = False
            for record in scan.records[1:]:
                kind = record.get("kind")
                if kind == "cell":
                    cells.append(CampaignCell.from_dict(record))
                elif kind == "planned":
                    planned = True
                elif kind == "done":
                    done[record["cell"]] = {
                        "key": record.get("key"),
                        "digest": record.get("digest"),
                    }
                elif kind == "failed":
                    failed_cells.append(record["cell"])
                elif kind == "complete":
                    completed = True
            if not planned:
                raise CampaignError(
                    f"{directory}: campaign died mid-plan (no cells were "
                    "simulated); delete the directory and re-plan"
                )
            fingerprint = plan_fingerprint(config.plan_identity(), cells)
            if fingerprint != header.get("fingerprint"):
                raise CampaignError(
                    f"{directory}: plan fingerprint mismatch — the journal "
                    "was written by a different plan (config edited or "
                    "generators drifted); refusing to resume"
                )
            journal = CampaignJournal(path, next_seq=scan.next_seq)
        except BaseException:
            lock.release()
            raise
        campaign = cls(
            directory, config, cells, journal, lock,
            done=done, failed_cells=failed_cells, completed=completed,
        )
        campaign.recovered_torn = torn_path
        return campaign

    @staticmethod
    def _acquire_lock(directory: str) -> FileLock:
        lock = FileLock(
            lock_path(directory), stale_seconds=CAMPAIGN_LOCK_STALE_SECONDS
        )
        try:
            # A held lock fails fast (timeout=0 semantics via a tiny wait):
            # two live orchestrators on one directory is an operator error,
            # not something to queue behind.
            lock.acquire(timeout=0.5)
        except LockHeldError as exc:
            owner = exc.owner
            raise CampaignError(
                f"{directory}: another orchestrator holds the campaign "
                f"lock (pid {owner.pid if owner else '?'} on "
                f"{owner.host if owner else '?'})"
            ) from exc
        return lock

    def close(self) -> None:
        self.journal.close()
        self.lock.release()

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------ querying

    @property
    def pending(self) -> List[CampaignCell]:
        """Cells with no durable completion — including previously failed
        ones, which a resume retries."""
        return [c for c in self.cells if c.cell_id not in self.done]

    # ------------------------------------------------------------- running

    def run(
        self,
        workers: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = stderr_progress,
        chaos: Optional[CampaignFaultInjector] = None,
        max_attempts: int = 3,
        job_timeout: Optional[float] = None,
    ) -> CampaignOutcome:
        """Dispatch pending cells, then finalize artifacts.

        Installs SIGTERM/SIGINT drain handlers for the duration (main
        thread only — the CLI's situation). Returns instead of raising for
        every expected end state; the exit code is in the outcome.
        """
        if self.completed and os.path.exists(results_path(self.directory)):
            return CampaignOutcome(
                status="complete",
                exit_code=0,
                cells_total=len(self.cells),
                cells_done=len(self.done),
                cells_failed=0,
            )
        self.journal.chaos = chaos
        previous_handlers = self._install_signal_handlers()
        runner = self._make_runner(workers, progress, max_attempts, job_timeout)
        if chaos is not None:
            runner.warm_build_hook = chaos.on_warm_build
        scale = SCALES[self.config.scale]
        reap_dead_beacons(self.directory)
        beacon = orchestrator_beacon_path(self.directory)
        failed_now: Dict[str, str] = {}
        try:
            pending = self.pending
            wave_limit = max(4, 2 * max(1, runner.workers))
            in_flight: List[Tuple[CampaignCell, object, str]] = []
            index = 0
            while index < len(pending) or in_flight:
                write_heartbeat(
                    beacon, state="dispatching",
                    done=len(self.done), total=len(self.cells),
                )
                while (
                    self._drain_signal is None
                    and index < len(pending)
                    and len(in_flight) < wave_limit
                ):
                    cell = pending[index]
                    index += 1
                    self.journal.append("dispatch", cell=cell.cell_id)
                    hits_before = runner.cache_hits
                    future = self._submit_cell(runner, scale, cell)
                    source = (
                        "cache" if runner.cache_hits > hits_before else "run"
                    )
                    in_flight.append((cell, future, source))
                if not in_flight:
                    break  # drained before anything was in flight
                cell, future, source = in_flight.pop(0)
                try:
                    result = future.result()
                except SweepJobError as exc:
                    self.journal.append(
                        "failed", cell=cell.cell_id,
                        kind=exc.failure.kind, error=exc.failure.error,
                    )
                    failed_now[cell.cell_id] = exc.failure.error
                    if progress is not None:
                        progress(
                            f"[campaign] {cell.cell_id:<40s} FAILED "
                            f"({exc.failure.kind})"
                        )
                else:
                    digest = result_digest(result.to_dict())
                    self.journal.append(
                        "done", cell=cell.cell_id, key=future.job.key,
                        digest=digest, source=source,
                    )
                    self.done[cell.cell_id] = {
                        "key": future.job.key, "digest": digest,
                    }
                    if progress is not None:
                        progress(
                            f"[campaign] {cell.cell_id:<40s} done "
                            f"({len(self.done)}/{len(self.cells)}, {source})"
                        )
            if self._drain_signal is not None:
                return self._drained(runner, failed_now, beacon)
            return self._finalize(runner, scale, failed_now, beacon)
        finally:
            self.journal.chaos = None
            runner.close()
            self._restore_signal_handlers(previous_handlers)

    # ------------------------------------------------------------ internals

    def _submit_cell(self, runner: SweepRunner, scale, cell: CampaignCell):
        """Submit one cell's job(s); sharded for long whole-run cells.

        Alone and sensitivity cells stay whole — they are short normalizer
        or single-point runs where shard warmup overhead dominates.
        """
        config = cell_config(scale, cell)
        traces = cell_traces(
            scale, cell,
            refs=self.config.refs,
            full_width=self.config.full_width,
            ingest_dir=self.config.ingest_dir,
        )
        if (
            self.config.shards >= 2
            and cell.category in ("bench", "mix", "trace")
        ):
            return runner.submit_sharded(config, traces, self.config.shards)
        return runner.submit(config, traces)

    def _make_runner(
        self,
        workers: Optional[int],
        progress: Optional[Callable[[str], None]],
        max_attempts: int,
        job_timeout: Optional[float],
    ) -> SweepRunner:
        from repro.telemetry.sampler import TelemetryConfig

        telemetry = (
            TelemetryConfig(epoch_cycles=self.config.epoch_cycles)
            if self.config.telemetry
            else None
        )
        return SweepRunner(
            workers=self.config.workers if workers is None else workers,
            cache_dir=os.path.join(self.directory, "cache"),
            progress=progress,
            retry=RetryPolicy(max_attempts=max_attempts, timeout=job_timeout),
            telemetry=telemetry,
            telemetry_dir=(
                os.path.join(self.directory, "telemetry")
                if self.config.telemetry
                else None
            ),
            checkpoint_dir=(
                os.path.join(self.directory, "checkpoints")
                if self.config.checkpoint
                else None
            ),
            heartbeat_dir=heartbeat_dir(self.directory),
        )

    def _install_signal_handlers(self) -> Dict[int, object]:
        previous: Dict[int, object] = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(
                    signum, self._request_drain
                )
            except ValueError:
                # Not the main thread (some embedders/tests): drain can
                # then only be requested programmatically.
                pass
        return previous

    def _restore_signal_handlers(self, previous: Dict[int, object]) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    def _request_drain(self, signum, _frame=None) -> None:
        """Signal handler: async-signal-safe by doing nothing but noting."""
        self._drain_signal = int(signum)

    def _drained(
        self, runner: SweepRunner, failed_now: Dict[str, str], beacon: str
    ) -> CampaignOutcome:
        """SIGTERM/SIGINT path: in-flight work is already collected; journal
        the drain, persist a resumable manifest, and report 128+signum."""
        signum = self._drain_signal
        self.journal.append("drain", signal=signum)
        write_heartbeat(beacon, state="drained", signal=signum)
        pending_ids = [c.cell_id for c in self.pending]
        self._write_manifest("drained", pending_ids, failed_now, signum)
        return CampaignOutcome(
            status="drained",
            exit_code=128 + int(signum),
            cells_total=len(self.cells),
            cells_done=len(self.done),
            cells_failed=len(failed_now),
            pending=pending_ids,
            signal=signum,
            sweep_summary=runner.summary(),
        )

    def _finalize(
        self,
        runner: SweepRunner,
        scale,
        failed_now: Dict[str, str],
        beacon: str,
    ) -> CampaignOutcome:
        """Assemble final artifacts from the cache and commit completion.

        Every cell is (re)submitted: just-computed cells answer from the
        in-process memo, previously-done cells from the content-addressed
        cache — nothing re-simulates unless its cache entry was lost, in
        which case the deterministic simulator regenerates identical
        bytes. Artifacts are written atomically *before* the ``complete``
        record, so that record proves the artifacts are durable.
        """
        write_heartbeat(beacon, state="finalizing")
        cell_payload: Dict[str, Dict] = {}
        for cell in self.cells:
            if cell.cell_id in failed_now:
                continue
            future = self._submit_cell(runner, scale, cell)
            try:
                result = future.result()
            except SweepJobError as exc:
                failed_now[cell.cell_id] = exc.failure.error
                continue
            cell_payload[cell.cell_id] = {
                "key": future.job.key,
                "result": result.to_dict(),
            }
        pending_ids = [
            c.cell_id for c in self.cells if c.cell_id not in cell_payload
        ]
        if failed_now:
            self._write_manifest("failed", pending_ids, failed_now, None)
            return CampaignOutcome(
                status="failed",
                exit_code=1,
                cells_total=len(self.cells),
                cells_done=len(self.done),
                cells_failed=len(failed_now),
                pending=pending_ids,
                sweep_summary=runner.summary(),
            )
        results_payload = {
            "format": RESULTS_FORMAT,
            "config": self.config.plan_identity(),
            "cells": cell_payload,
        }
        atomic_write_json(
            results_path(self.directory), results_payload,
            indent=2, sort_keys=True,
        )
        atomic_write_text(
            report_path(self.directory), self._render_report(cell_payload)
        )
        # Figure 6/7/8 surfaces + sensitivity table: deterministic bytes
        # derived from the same payload, written before the complete record
        # so crash recovery reproduces them byte-identically.
        from repro.analysis.surfaces import assemble_surfaces, write_surfaces

        write_surfaces(
            self.directory,
            assemble_surfaces(self.config, self.cells, cell_payload),
        )
        digest = result_digest(results_payload)
        self.journal.append("complete", results_digest=digest)
        self.completed = True
        self._write_manifest("complete", [], {}, None)
        write_heartbeat(beacon, state="complete")
        return CampaignOutcome(
            status="complete",
            exit_code=0,
            cells_total=len(self.cells),
            cells_done=len(self.done),
            cells_failed=0,
            sweep_summary=runner.summary(),
        )

    def _write_manifest(
        self,
        status: str,
        pending_ids: List[str],
        failed_now: Dict[str, str],
        signum: Optional[int],
    ) -> None:
        atomic_write_json(
            manifest_path(self.directory),
            {
                "format": MANIFEST_FORMAT,
                "status": status,
                "signal": signum,
                "cells_total": len(self.cells),
                "cells_done": len(self.done),
                "failed": failed_now,
                "pending": pending_ids,
            },
            indent=2,
            sort_keys=True,
        )

    def _render_report(self, cell_payload: Dict[str, Dict]) -> str:
        """The human-readable summary table (deterministic bytes)."""
        from repro.sim.system import SimulationResult

        headers = [
            "cell", "mechanism", "workload", "cores",
            "IPC", "write RHR", "tag PKI", "WPKI",
        ]
        rows = []
        for cell in self.cells:
            entry = cell_payload.get(cell.cell_id)
            if entry is None:
                rows.append(
                    [cell.cell_id, cell.mechanism, cell.workload,
                     cell.num_cores, "n/a", "n/a", "n/a", "n/a"]
                )
                continue
            result = SimulationResult.from_dict(entry["result"])
            ipc = result.ipc
            mean_ipc = sum(ipc) / len(ipc) if ipc else 0.0
            rows.append(
                [
                    cell.cell_id,
                    cell.mechanism,
                    cell.workload,
                    cell.num_cores,
                    f"{mean_ipc:.4f}",
                    f"{result.write_row_hit_rate:.4f}",
                    f"{result.tag_lookups_pki:.1f}",
                    f"{result.memory_wpki:.1f}",
                ]
            )
        title = (
            f"campaign: {len(cell_payload)}/{len(self.cells)} cells "
            f"({self.config.scale} scale)"
        )
        return format_table(headers, rows, title=title) + "\n"


# ---------------------------------------------------------------- status


def campaign_status(directory: str) -> Dict:
    """Read-only progress/health snapshot of a campaign directory.

    Never takes the lock and never mutates (a torn journal tail is
    *reported*, not recovered — recovery belongs to the resuming
    orchestrator). Safe to run while a campaign is live.
    """
    from repro.campaign.journal import scan_journal
    from repro.utils.locks import pid_alive

    path = journal_path(directory)
    if not os.path.exists(path):
        raise CampaignError(f"{directory}: no campaign journal")
    scan = scan_journal(path)
    config = CampaignConfig.from_dict(scan.header["config"])
    cells: List[str] = []
    done = set()
    failed = set()
    completed = False
    drained: Optional[int] = None
    for record in scan.records[1:]:
        kind = record.get("kind")
        if kind == "cell":
            cells.append(record["cell_id"])
        elif kind == "done":
            done.add(record["cell"])
            failed.discard(record["cell"])
        elif kind == "failed":
            failed.add(record["cell"])
        elif kind == "complete":
            completed = True
        elif kind == "drain":
            drained = record.get("signal")
    owner = FileLock(lock_path(directory)).read_owner()
    report = scan_heartbeats(directory)
    return {
        "directory": directory,
        "config": config.to_dict(),
        "cells_total": len(cells),
        "cells_done": len(done),
        "cells_failed": len(failed - done),
        "pending": [c for c in cells if c not in done],
        "completed": completed,
        "drained_signal": drained,
        "torn_tail_bytes": len(scan.torn),
        "journal_records": len(scan.records),
        "lock_owner": None if owner is None else {
            "pid": owner.pid,
            "host": owner.host,
            "alive": pid_alive(owner.pid),
        },
        "workers_beating": len(report.workers),
        "workers_stale": len(report.stale_workers),
        "orchestrator_beating": report.orchestrator is not None
        and not report.orchestrator.stale(120.0),
    }


def render_status(status: Dict) -> str:
    """CI-friendly table for ``repro campaign status``."""
    state = "complete" if status["completed"] else (
        "drained" if status["drained_signal"] is not None else "in progress"
    )
    rows = [
        ["state", state],
        ["cells", f"{status['cells_done']}/{status['cells_total']} done"],
        ["failed", status["cells_failed"]],
        ["pending", len(status["pending"])],
        ["journal records", status["journal_records"]],
        ["torn tail", f"{status['torn_tail_bytes']} bytes"
         if status["torn_tail_bytes"] else "none"],
        ["lock", "free" if status["lock_owner"] is None else (
            f"pid {status['lock_owner']['pid']} on "
            f"{status['lock_owner']['host']} "
            f"({'alive' if status['lock_owner']['alive'] else 'DEAD'})"
        )],
        ["workers beating", status["workers_beating"]],
        ["workers stale", status["workers_stale"]],
    ]
    return format_table(
        ["field", "value"], rows,
        title=f"campaign {status['directory']}",
    )
