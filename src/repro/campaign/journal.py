"""Append-only write-ahead journal for campaign orchestration.

The journal is the campaign's single source of truth: every planned cell,
dispatch, completion and lifecycle transition is appended as one JSONL
record *before* the orchestrator acts on it, and each append is flushed and
``fsync``'d before :meth:`CampaignJournal.append` returns. A campaign
killed at any instant — ``kill -9`` included — therefore leaves a journal
whose durable prefix describes exactly what had been decided, plus at most
one torn trailing record from an append that never completed.

Record framing (one JSON object per line, sorted keys)::

    {"kind": "...", "seq": N, "sum": "<16 hex>", ...payload...}

``seq`` numbers records contiguously from 0, so a journal that *lost* a
record (as opposed to tearing its tail) is detected as corruption rather
than silently replayed short. ``sum`` is the first 16 hex characters of the
SHA-256 of the record serialized without it — enough to catch torn writes,
bit rot and hand editing, while keeping lines grep-able.

Recovery (:func:`recover_journal`) scans the file, accepts the longest
valid prefix, quarantines any torn tail to ``<journal>.torn`` (evidence is
kept, never destroyed) and truncates the journal back to the good prefix so
subsequent appends continue the contiguous sequence. A bad record *before*
the tail is real corruption and raises: replaying half a campaign's history
as if it were all of it would quietly re-run or skip work.

The first record must be a ``header`` carrying :data:`JOURNAL_FORMAT` —
same versioning discipline as the telemetry stream — so a foreign or
future-format file fails fast instead of mis-parsing.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.utils.atomic import fsync_directory

#: Bump when the record schema changes; readers reject newer formats.
JOURNAL_FORMAT = 1

#: Hex characters of SHA-256 kept per record (64 bits: torn writes and
#: bit flips are caught; this is an integrity check, not an auth tag).
CHECKSUM_HEX_CHARS = 16


class JournalError(ValueError):
    """The journal cannot be parsed, verified, or safely recovered."""


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:CHECKSUM_HEX_CHARS]


def encode_record(body: Dict) -> str:
    """Serialize ``body`` (without trailing newline), adding its checksum."""
    bare = {key: value for key, value in body.items() if key != "sum"}
    record = dict(bare)
    record["sum"] = _checksum(json.dumps(bare, sort_keys=True))
    return json.dumps(record, sort_keys=True)


def decode_line(line: str, line_number: int, source: str = "journal") -> Dict:
    """Parse and checksum-verify one journal line.

    Raises:
        JournalError: unparseable JSON, wrong shape, or checksum mismatch.
    """
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise JournalError(
            f"{source}: line {line_number}: unparseable record: {exc}"
        ) from exc
    if not isinstance(record, dict):
        raise JournalError(
            f"{source}: line {line_number}: record is not an object"
        )
    stated = record.get("sum")
    bare = {key: value for key, value in record.items() if key != "sum"}
    expected = _checksum(json.dumps(bare, sort_keys=True))
    if stated != expected:
        raise JournalError(
            f"{source}: line {line_number}: checksum mismatch "
            f"(stated {stated!r}, computed {expected!r})"
        )
    return record


@dataclass(frozen=True)
class JournalScan:
    """Result of reading a journal from disk.

    Attributes:
        records: every verified record, in order (header included).
        good_bytes: length of the valid prefix — where a recovery truncates.
        torn: raw bytes of the invalid tail (``b""`` for a clean journal).
    """

    records: List[Dict]
    good_bytes: int
    torn: bytes

    @property
    def header(self) -> Dict:
        return self.records[0]

    @property
    def next_seq(self) -> int:
        return len(self.records)


def scan_journal(path: str) -> JournalScan:
    """Read and verify ``path``, classifying any invalid tail as torn.

    Only the *final* line may be bad (a crashed append); a bad record with
    valid records after it cannot have been produced by tearing and raises
    :class:`JournalError`. Sequence numbers must be contiguous from 0, and
    the first record must be a supported-format header.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise JournalError(f"{path}: cannot read journal: {exc}") from exc

    records: List[Dict] = []
    good_bytes = 0
    offset = 0
    line_number = 0
    pending: Optional[JournalError] = None
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            # Unterminated final line: the classic torn append.
            break
        line_number += 1
        line = data[offset:newline]
        if pending is not None:
            raise pending  # the bad line was not the tail: corruption
        try:
            record = decode_line(
                line.decode("utf-8", errors="replace"), line_number, path
            )
        except JournalError as exc:
            pending = exc
            offset = newline + 1
            continue
        expected_seq = len(records)
        if record.get("seq") != expected_seq:
            raise JournalError(
                f"{path}: line {line_number}: sequence break "
                f"(expected seq {expected_seq}, got {record.get('seq')!r})"
            )
        if expected_seq == 0:
            _validate_header(record, path)
        records.append(record)
        offset = newline + 1
        good_bytes = offset
    if not records:
        if data:
            raise JournalError(
                f"{path}: no valid header record (journal torn at creation; "
                "re-plan the campaign)"
            )
        raise JournalError(f"{path}: empty journal")
    return JournalScan(
        records=records, good_bytes=good_bytes, torn=data[good_bytes:]
    )


def _validate_header(record: Dict, path: str) -> None:
    if record.get("kind") != "header":
        raise JournalError(f"{path}: first record is not a journal header")
    if record.get("format", 0) > JOURNAL_FORMAT:
        raise JournalError(
            f"{path}: journal format {record.get('format')} is newer than "
            f"supported ({JOURNAL_FORMAT})"
        )


def recover_journal(path: str) -> Tuple[JournalScan, Optional[str]]:
    """Scan ``path`` and, if its tail is torn, quarantine and truncate.

    The torn bytes move to ``<path>.torn`` (replacing any previous
    quarantine — each recovery documents the most recent crash) and the
    journal is truncated back to its valid prefix, fsync'd, so the next
    append continues the contiguous sequence on a clean file.

    Returns:
        ``(scan, torn_path)`` — ``torn_path`` is None for a clean journal.
    """
    scan = scan_journal(path)
    if not scan.torn:
        return scan, None
    torn_path = f"{path}.torn"
    with open(torn_path, "wb") as handle:
        handle.write(scan.torn)
        handle.flush()
        os.fsync(handle.fileno())
    with open(path, "r+b") as handle:
        handle.truncate(scan.good_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    fsync_directory(os.path.dirname(os.path.abspath(path)))
    return scan, torn_path


class CampaignJournal:
    """Append side of the journal: durable, checksummed, crash-ordered.

    ``chaos`` (when set) is a
    :class:`~repro.analysis.chaos.CampaignFaultInjector` consulted around
    each durable append; it is how the kill-and-resume proof schedules
    SIGKILLs at exact journal offsets, including *mid-append* (a half
    record is written and fsync'd before the process dies, leaving the
    torn-tail shape recovery must handle).
    """

    def __init__(self, path: str, next_seq: int = 0) -> None:
        self.path = path
        self.next_seq = next_seq
        self.chaos = None
        self._handle = None

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, kind: str, **payload) -> Dict:
        """Durably append one record; returns it (with seq and checksum).

        The record is on disk — written, flushed, fsync'd — before this
        returns. The orchestrator's write-ahead discipline depends on it:
        intent first, action second.
        """
        body: Dict = {"kind": kind, "seq": self.next_seq}
        for key, value in payload.items():
            if key in body:
                raise ValueError(f"reserved journal field {key!r}")
            body[key] = value
        data = (encode_record(body) + "\n").encode("utf-8")
        handle = self._ensure_handle()
        if self.chaos is not None:
            self.chaos.before_journal_append(handle, body["seq"], data)
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
        if body["seq"] == 0:
            # First append created the file; make the directory entry
            # durable too, or a crash could lose the whole journal.
            fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        self.next_seq += 1
        record = decode_line(data.decode("utf-8").rstrip("\n"), -1, self.path)
        if self.chaos is not None:
            self.chaos.after_journal_append(body["seq"])
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
