"""Kill-and-resume chaos proof: recovery must be byte-identical.

The harness runs a small campaign grid three ways and compares bytes:

1. an *uninterrupted* reference run;
2. for each scheduled kill point, a fresh directory whose orchestrator is
   SIGKILLed (or SIGTERM-drained) exactly there, then resumed with
   ``repro campaign run`` until it completes;
3. the final ``results.json`` / ``report.txt`` (and, for telemetry
   campaigns, every ``*.telemetry.jsonl``) of each recovered campaign must
   equal the reference **byte for byte**.

Kill points are scheduled through :class:`~repro.analysis.chaos.
CampaignFaultInjector` (the ``REPRO_CAMPAIGN_CHAOS`` environment variable)
at exact journal sequence offsets, so each proof run dies at the same
instant every time — including *mid-journal-append* (a torn half record is
fsync'd first) and *mid-checkpoint-build* (the warm-image build lock is
held, partial temp litter is left). Campaigns run with ``--workers 0``
(inline) so the journal offsets of the interesting transitions are
deterministic.

Used by ``tools/soak_gate.py`` (the CI ``campaign`` stage) and by the
slow-marked tests in ``tests/campaign/test_chaos_proof.py``.
"""

from __future__ import annotations

import filecmp
import glob
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.chaos import CAMPAIGN_CHAOS_ENV

#: Exit statuses that count as "the scheduled fault fired": death by
#: SIGKILL (negative signal number from subprocess) or a drain exit.
_SIGKILL_RC = -9


@dataclass(frozen=True)
class KillPoint:
    """One scheduled fault in a proof run."""

    name: str
    spec: str  # REPRO_CAMPAIGN_CHAOS value, e.g. "kill=5,mode=torn"
    expect: str = "sigkill"  # "sigkill" | "drain"


@dataclass
class ProofReport:
    """Outcome of one proof: which kill points recovered byte-identically."""

    variant: str
    reference_dir: str
    points: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(point["identical"] for point in self.points)

    def to_text(self) -> str:
        lines = [f"chaos proof [{self.variant}]:"]
        for point in self.points:
            verdict = "byte-identical" if point["identical"] else "DIVERGED"
            lines.append(
                f"  {point['name']:<28s} died as scheduled "
                f"({point['death']}), resumed in {point['resumes']} "
                f"run(s): {verdict}"
            )
            for detail in point.get("differences", []):
                lines.append(f"    - {detail}")
        return "\n".join(lines)


def campaign_command(
    directory: str,
    benchmarks: str,
    mechanisms: str,
    refs: int,
    telemetry: bool = False,
    checkpoint: bool = False,
    tier: Optional[str] = None,
    cores: Optional[str] = None,
    sensitivity: Optional[str] = None,
    sensitivity_benchmarks: Optional[str] = None,
) -> List[str]:
    """The ``repro campaign run`` invocation the proof drives."""
    command = [
        sys.executable, "-m", "repro", "campaign", "run",
        "--dir", directory,
        "--benchmarks", benchmarks,
        "--mechanisms", mechanisms,
        "--refs", str(refs),
        "--workers", "0",
        "--quiet",
    ]
    if tier is not None:
        command.extend(["--tier", tier])
    else:
        command.extend(["--scale", "quick"])
    if cores is not None:
        command.extend(["--cores", cores])
    if sensitivity is not None:
        command.extend(["--sensitivity", sensitivity])
    if sensitivity_benchmarks is not None:
        command.extend(["--sensitivity-benchmarks", sensitivity_benchmarks])
    if telemetry:
        command.append("--telemetry")
    if checkpoint:
        command.append("--checkpoint")
    return command


def run_campaign_process(
    command: Sequence[str],
    chaos_spec: Optional[str] = None,
    timeout: float = 600.0,
) -> subprocess.CompletedProcess:
    """Run one campaign subprocess, optionally under scheduled chaos."""
    env = os.environ.copy()
    src = os.path.join(os.path.dirname(__file__), "..", "..")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    if chaos_spec is not None:
        env[CAMPAIGN_CHAOS_ENV] = chaos_spec
    else:
        env.pop(CAMPAIGN_CHAOS_ENV, None)
    env.pop("REPRO_CHAOS", None)  # job-level chaos would skew the reference
    return subprocess.run(
        list(command),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _compare_artifacts(
    reference_dir: str, recovered_dir: str, telemetry: bool
) -> List[str]:
    """Byte-compare final artifacts; returns human-readable differences."""
    differences: List[str] = []
    for name in ("results.json", "report.txt"):
        ref = os.path.join(reference_dir, name)
        got = os.path.join(recovered_dir, name)
        if not os.path.exists(got):
            differences.append(f"{name}: missing after recovery")
        elif not filecmp.cmp(ref, got, shallow=False):
            differences.append(f"{name}: bytes differ from reference")
    # Surfaces (Figure 6/7/8 + sensitivity) are derived from results.json
    # but rendered separately; recovery must regenerate the same bytes.
    ref_surfaces = {
        os.path.basename(p)
        for p in glob.glob(os.path.join(reference_dir, "surfaces", "*"))
    }
    got_surfaces = {
        os.path.basename(p)
        for p in glob.glob(os.path.join(recovered_dir, "surfaces", "*"))
    }
    for missing in sorted(ref_surfaces - got_surfaces):
        differences.append(f"surfaces/{missing}: missing after recovery")
    for extra in sorted(got_surfaces - ref_surfaces):
        differences.append(f"surfaces/{extra}: unexpected artifact")
    for name in sorted(ref_surfaces & got_surfaces):
        if not filecmp.cmp(
            os.path.join(reference_dir, "surfaces", name),
            os.path.join(recovered_dir, "surfaces", name),
            shallow=False,
        ):
            differences.append(f"surfaces/{name}: bytes differ")
    if telemetry:
        ref_names = {
            os.path.basename(p)
            for p in glob.glob(
                os.path.join(reference_dir, "telemetry", "*.telemetry.jsonl")
            )
        }
        got_names = {
            os.path.basename(p)
            for p in glob.glob(
                os.path.join(recovered_dir, "telemetry", "*.telemetry.jsonl")
            )
        }
        for missing in sorted(ref_names - got_names):
            differences.append(f"telemetry/{missing}: missing after recovery")
        for extra in sorted(got_names - ref_names):
            differences.append(f"telemetry/{extra}: unexpected artifact")
        for name in sorted(ref_names & got_names):
            if not filecmp.cmp(
                os.path.join(reference_dir, "telemetry", name),
                os.path.join(recovered_dir, "telemetry", name),
                shallow=False,
            ):
                differences.append(f"telemetry/{name}: bytes differ")
    return differences


def kill_and_resume_proof(
    base_dir: str,
    variant: str,
    kill_points: Sequence[KillPoint],
    benchmarks: str = "lbm",
    mechanisms: str = "baseline,dbi",
    refs: int = 800,
    telemetry: bool = False,
    checkpoint: bool = False,
    tier: Optional[str] = None,
    cores: Optional[str] = None,
    sensitivity: Optional[str] = None,
    sensitivity_benchmarks: Optional[str] = None,
    max_resumes: int = 4,
) -> ProofReport:
    """Run the proof: reference run, then kill/resume at every point.

    Raises:
        AssertionError: a run did not die as scheduled, a resume did not
            converge within ``max_resumes``, or (reported, not raised) the
            recovered artifacts diverged — check :attr:`ProofReport.ok`.
    """
    reference_dir = os.path.join(base_dir, f"reference-{variant}")
    reference = run_campaign_process(
        campaign_command(
            reference_dir, benchmarks, mechanisms, refs,
            telemetry=telemetry, checkpoint=checkpoint,
            tier=tier, cores=cores, sensitivity=sensitivity,
            sensitivity_benchmarks=sensitivity_benchmarks,
        )
    )
    assert reference.returncode == 0, (
        f"reference campaign failed (rc {reference.returncode}):\n"
        f"{reference.stdout}\n{reference.stderr}"
    )
    report = ProofReport(variant=variant, reference_dir=reference_dir)
    for point in kill_points:
        directory = os.path.join(base_dir, f"{variant}-{point.name}")
        command = campaign_command(
            directory, benchmarks, mechanisms, refs,
            telemetry=telemetry, checkpoint=checkpoint,
            tier=tier, cores=cores, sensitivity=sensitivity,
            sensitivity_benchmarks=sensitivity_benchmarks,
        )
        first = run_campaign_process(command, chaos_spec=point.spec)
        if point.expect == "sigkill":
            assert first.returncode == _SIGKILL_RC, (
                f"{point.name}: expected death by SIGKILL, got rc "
                f"{first.returncode}:\n{first.stdout}\n{first.stderr}"
            )
            death = "SIGKILL"
        else:
            assert first.returncode == 128 + 15, (
                f"{point.name}: expected drain exit 143, got rc "
                f"{first.returncode}:\n{first.stdout}\n{first.stderr}"
            )
            death = "SIGTERM drain"
        resumes = 0
        while resumes < max_resumes:
            resumes += 1
            resumed = run_campaign_process(command)  # no chaos: clean resume
            if resumed.returncode == 0:
                break
            assert resumed.returncode != 2, (
                f"{point.name}: resume refused (rc 2):\n{resumed.stderr}"
            )
        else:
            raise AssertionError(
                f"{point.name}: campaign did not converge within "
                f"{max_resumes} resume(s)"
            )
        differences = _compare_artifacts(reference_dir, directory, telemetry)
        report.points.append(
            {
                "name": point.name,
                "death": death,
                "resumes": resumes,
                "identical": not differences,
                "differences": differences,
            }
        )
    return report
