"""Crash-consistent campaign orchestration (journal, watchdog, recovery).

Public surface:

* :class:`Campaign` / :class:`CampaignConfig` — plan, run, resume.
* :func:`campaign_status` / :func:`render_status` — read-only health.
* :class:`CampaignJournal`, :func:`scan_journal`, :func:`recover_journal`
  — the write-ahead log.
* :mod:`repro.campaign.proof` — the seeded kill-and-resume chaos harness
  (CI's byte-identical-recovery gate).
"""

from repro.campaign.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    JournalError,
    recover_journal,
    scan_journal,
)
from repro.campaign.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignError,
    CampaignOutcome,
    campaign_status,
    render_status,
)
from repro.campaign.plan import (
    DEFAULT_MECHANISMS,
    CampaignCell,
    cell_config,
    cell_traces,
    plan_cells,
    plan_fingerprint,
)
from repro.campaign.watchdog import (
    WatchdogReport,
    reap_dead_beacons,
    scan_heartbeats,
)

__all__ = [
    "JOURNAL_FORMAT",
    "CampaignJournal",
    "JournalError",
    "recover_journal",
    "scan_journal",
    "Campaign",
    "CampaignConfig",
    "CampaignError",
    "CampaignOutcome",
    "campaign_status",
    "render_status",
    "DEFAULT_MECHANISMS",
    "CampaignCell",
    "cell_config",
    "cell_traces",
    "plan_cells",
    "plan_fingerprint",
    "WatchdogReport",
    "reap_dead_beacons",
    "scan_heartbeats",
]
