"""Campaign watchdog: liveness from heartbeat beacons.

The sweep runner's per-attempt timeout only observes attempts that are
actively being awaited; a pool worker that dies or wedges *between* jobs,
or an orchestrator that is SIGKILLed outright, is invisible to it. The
watchdog closes that gap from the outside, using only on-disk evidence:

* every pool worker beats ``heartbeats/worker-<pid>.json`` at attempt
  start and end (see :func:`repro.analysis.runner._execute_in_worker`);
* the orchestrator beats ``heartbeats/orchestrator.json`` once per
  scheduling round.

:func:`scan_heartbeats` interprets the beacon directory into a
:class:`WatchdogReport`; ``repro campaign status`` renders it, and the
orchestrator reaps dead workers' beacons at the start of a run so stale
corpses from a previous crash do not read as a currently-sick campaign.
Locks are *not* the watchdog's job — ``FileLock`` reclaims its own stale
locks by pid death / heartbeat TTL (:mod:`repro.utils.locks`).
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass
from typing import List, Optional

from repro.utils.heartbeat import HeartbeatStatus, read_heartbeat

#: A worker silent this long (and not provably dead) is reported wedged.
DEFAULT_WORKER_TTL_SECONDS = 300.0

#: Orchestrator beats every scheduling round; silence this long means the
#: campaign needs ``repro campaign run`` (the lock, if any, will reclaim).
DEFAULT_ORCHESTRATOR_TTL_SECONDS = 120.0

HEARTBEAT_DIRNAME = "heartbeats"
ORCHESTRATOR_BEACON = "orchestrator.json"


def heartbeat_dir(campaign_dir: str) -> str:
    return os.path.join(campaign_dir, HEARTBEAT_DIRNAME)


def orchestrator_beacon_path(campaign_dir: str) -> str:
    return os.path.join(heartbeat_dir(campaign_dir), ORCHESTRATOR_BEACON)


@dataclass(frozen=True)
class WatchdogReport:
    """Interpreted liveness of one campaign directory."""

    orchestrator: Optional[HeartbeatStatus]
    workers: List[HeartbeatStatus]
    stale_workers: List[HeartbeatStatus]

    def orchestrator_stale(self, ttl: float = DEFAULT_ORCHESTRATOR_TTL_SECONDS) -> bool:
        """True when an orchestrator beacon exists but its owner is gone."""
        return self.orchestrator is not None and self.orchestrator.stale(ttl)


def scan_heartbeats(
    campaign_dir: str,
    worker_ttl: float = DEFAULT_WORKER_TTL_SECONDS,
) -> WatchdogReport:
    """Read every beacon under the campaign and classify staleness.

    Torn beacons (crashed mid-rewrite) read as absent, by design — the
    interesting signal is a beacon that *exists* and whose owner is dead or
    silent.
    """
    directory = heartbeat_dir(campaign_dir)
    workers: List[HeartbeatStatus] = []
    stale: List[HeartbeatStatus] = []
    for path in sorted(glob.glob(os.path.join(directory, "worker-*.json"))):
        status = read_heartbeat(path)
        if status is None:
            continue
        workers.append(status)
        if status.stale(worker_ttl):
            stale.append(status)
    return WatchdogReport(
        orchestrator=read_heartbeat(orchestrator_beacon_path(campaign_dir)),
        workers=workers,
        stale_workers=stale,
    )


def reap_dead_beacons(campaign_dir: str) -> int:
    """Delete beacons whose recorded (same-host) pid no longer exists.

    Run by the orchestrator before dispatching: corpses from a previous
    crash would otherwise read as a permanently sick campaign. Only
    provably-dead beacons are reaped — age alone never deletes, because a
    merely-wedged worker's beacon is exactly the evidence worth keeping.
    Returns the number reaped.
    """
    reaped = 0
    directory = heartbeat_dir(campaign_dir)
    for path in glob.glob(os.path.join(directory, "worker-*.json")):
        status = read_heartbeat(path)
        if status is not None and status.pid_dead:
            try:
                os.unlink(path)
                reaped += 1
            except OSError:
                pass
    return reaped
