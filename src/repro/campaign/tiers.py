"""Campaign tier presets: quick / nightly / full.

One name resolves to a complete :class:`CampaignConfig` — scale, workload
roster, mechanism list, trace lengths, sharding and sensitivity points —
so CI stages and the nightly soak invoke the same campaign shape with one
flag (``repro campaign run --tier nightly``) instead of a dozen.

The tiers form a cost ladder:

* **quick** — minutes. The full-width mix *tables* (102/259/120) at the
  quick scale with short traces and a benchmark subset; what the
  ``campaignfull`` CI stage runs on every push.
* **nightly** — an hour-ish. Quick scale, every benchmark and mechanism,
  longer traces, sharded long runs; the scheduled soak.
* **full** — the paper's Section 6 surface at the default scale. Run
  deliberately, resumable across days via the campaign journal.

Every preset leaves ``workers`` at 0 — parallelism is an execution choice,
not part of the campaign's identity — and explicit CLI flags override any
preset field (the soak gate shrinks the quick tier that way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.campaign.orchestrator import CampaignConfig
from repro.campaign.plan import DEFAULT_MECHANISMS
from repro.workloads.spec import profile_names

#: Figure-6-prominent subset used by the quick tier (write-intensive pair
#: plus a row-hit-friendly streamer and a cache-friendly control).
QUICK_BENCHMARKS = ("mcf", "lbm", "libquantum", "bzip2")


@dataclass(frozen=True)
class TierPreset:
    """Default campaign shape of one tier."""

    name: str
    scale: str
    benchmarks: Tuple[str, ...]
    mechanisms: Tuple[str, ...]
    core_counts: Tuple[int, ...]
    refs: int
    shards: int
    sensitivity: Tuple[int, ...]
    sensitivity_benchmarks: Tuple[str, ...]

    def config(self, **overrides) -> CampaignConfig:
        """A :class:`CampaignConfig` with this tier's defaults.

        Keyword overrides win over preset fields, so callers can shrink
        (the soak gate) or extend (an ingest registry) a tier without a
        bespoke preset. ``benchmarks=()`` resolves to the tier roster —
        empty means "unspecified" at the CLI.
        """
        fields = {
            "scale": self.scale,
            "benchmarks": self.benchmarks,
            "mechanisms": self.mechanisms,
            "core_counts": self.core_counts,
            "refs": self.refs,
            "tier": self.name,
            "full_width": True,
            "shards": self.shards,
            "sensitivity": self.sensitivity,
            "sensitivity_benchmarks": self.sensitivity_benchmarks,
        }
        for key, value in overrides.items():
            if key == "benchmarks" and not value:
                continue
            fields[key] = value
        return CampaignConfig(**fields)


TIERS: Dict[str, TierPreset] = {
    preset.name: preset
    for preset in (
        TierPreset(
            name="quick",
            scale="quick",
            benchmarks=QUICK_BENCHMARKS,
            mechanisms=("baseline", "dawb", "dbi+awb+clb"),
            core_counts=(1, 2, 4, 8),
            refs=256,
            shards=0,
            sensitivity=(1, 2, 4),
            sensitivity_benchmarks=("lbm", "mcf"),
        ),
        TierPreset(
            name="nightly",
            scale="quick",
            benchmarks=tuple(profile_names()),
            mechanisms=DEFAULT_MECHANISMS,
            core_counts=(1, 2, 4, 8),
            refs=2_000,
            shards=4,
            sensitivity=(1, 2, 4, 8),
            sensitivity_benchmarks=("lbm", "milc", "mcf"),
        ),
        TierPreset(
            name="full",
            scale="default",
            benchmarks=tuple(profile_names()),
            mechanisms=DEFAULT_MECHANISMS,
            core_counts=(1, 2, 4, 8),
            refs=30_000,
            shards=8,
            sensitivity=(1, 2, 4, 8),
            sensitivity_benchmarks=("lbm", "milc", "mcf"),
        ),
    )
}


def tier_names() -> Tuple[str, ...]:
    return tuple(TIERS)


def tier_config(name: str, **overrides) -> CampaignConfig:
    """Resolve a tier name (and optional overrides) to a campaign config."""
    preset = TIERS.get(name)
    if preset is None:
        raise ValueError(
            f"unknown tier {name!r}; choose from {sorted(TIERS)}"
        )
    return preset.config(**overrides)
