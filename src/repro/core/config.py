"""Dirty-Block Index configuration (paper Section 4).

The design space has three key parameters:

* **size** (α) — the ratio of blocks trackable by the DBI to blocks in the
  cache (Section 4.1). Paper default: α = 1/4.
* **granularity** — blocks tracked per entry (Section 4.2). Paper default 64,
  i.e. half an 8 KB DRAM row of 64 B blocks.
* **replacement policy** (Section 4.3). Paper default: LRW.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.utils.validation import check_positive, check_power_of_two


@dataclass(frozen=True)
class DbiConfig:
    """Geometry, latency and policy of the DBI.

    Attributes:
        cache_blocks: blocks in the cache the DBI serves (sets its capacity
            via ``alpha``).
        alpha: DBI size as a fraction of cache blocks (paper's α).
        granularity: blocks per DBI entry; must divide the DRAM row size and
            be a power of two.
        associativity: DBI set associativity (paper Table 1: 16).
        latency: DBI access latency in cycles (paper Table 1: 4).
        replacement: one of "lrw", "lrw-bip", "rwip", "max-dirty", "min-dirty".
    """

    cache_blocks: int
    alpha: Fraction = Fraction(1, 4)
    granularity: int = 64
    associativity: int = 16
    latency: int = 4
    replacement: str = "lrw"

    def __post_init__(self) -> None:
        check_power_of_two("cache_blocks", self.cache_blocks)
        check_power_of_two("granularity", self.granularity)
        check_positive("associativity", self.associativity)
        check_positive("latency", self.latency)
        if not isinstance(self.alpha, Fraction):
            object.__setattr__(self, "alpha", Fraction(self.alpha).limit_denominator(64))
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        # region_of/offset_of/set_of sit on the per-writeback DBI path; the
        # geometry is fixed at construction, so fold the Fraction arithmetic
        # and power-of-two divisions into cached shifts/masks once. These are
        # not dataclass fields: repr/eq (and the repr-keyed sweep cache) are
        # untouched.
        object.__setattr__(
            self, "_tracked_blocks", int(self.cache_blocks * self.alpha)
        )
        object.__setattr__(
            self, "_num_entries", self._tracked_blocks // self.granularity
        )
        object.__setattr__(
            self, "_num_sets", self._num_entries // self.associativity
        )
        object.__setattr__(
            self, "_granularity_shift", self.granularity.bit_length() - 1
        )
        object.__setattr__(self, "_granularity_mask", self.granularity - 1)
        if self.num_entries < 1:
            raise ValueError(
                f"DBI would have no entries: cache_blocks={self.cache_blocks}, "
                f"alpha={self.alpha}, granularity={self.granularity}"
            )
        if self.num_entries < self.associativity:
            raise ValueError(
                f"DBI entries ({self.num_entries}) fewer than associativity "
                f"({self.associativity}); shrink associativity"
            )
        if self.num_entries % self.associativity != 0:
            raise ValueError(
                f"associativity {self.associativity} must divide entry count "
                f"{self.num_entries}"
            )

    @property
    def tracked_blocks(self) -> int:
        """Cumulative blocks trackable by all entries (α × cache blocks)."""
        return self._tracked_blocks

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def region_of(self, block_addr: int) -> int:
        """Region id (the DBI's 'row tag' space) of a block address."""
        return block_addr >> self._granularity_shift

    def offset_of(self, block_addr: int) -> int:
        """Bit position of a block inside its region's bit vector."""
        return block_addr & self._granularity_mask

    def block_of(self, region_id: int, offset: int) -> int:
        """Inverse mapping from (region, bit position) to block address."""
        if not 0 <= offset < self.granularity:
            raise ValueError(f"offset {offset} out of range 0..{self.granularity - 1}")
        return (region_id << self._granularity_shift) | offset

    def set_of(self, region_id: int) -> int:
        """DBI set index for a region id."""
        return region_id % self._num_sets
