"""Adapting cache-coherence protocols to the DBI (paper Section 2.3).

Many protocols encode dirtiness *implicitly* in coherence states: MESI's M
(Modified) means exclusive-and-dirty; MOESI adds O (Owned) for shared-and-
dirty. To move the dirty information into the DBI, the paper proposes
splitting the state space into (dirty state, clean twin) pairs —
MOESI → {(M, E), (O, S), (I,)} — storing only the *clean twin* in the tag
entry and one bit (the pair selector) in the DBI.

:class:`CoherenceAdapter` implements that mapping for MSI, MESI and MOESI:
given a protocol state it yields the (stored state, dbi_dirty_bit) encoding
and back. The invariant tests assert the round trip is lossless, i.e. the
DBI can carry the dirty half of any of these protocols without widening the
tag entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: state -> clean twin (states absent from the map are their own twin).
_PROTOCOL_PAIRS: Dict[str, Dict[str, str]] = {
    "msi": {"M": "S"},
    "mesi": {"M": "E"},
    "moesi": {"M": "E", "O": "S"},
}

_PROTOCOL_STATES: Dict[str, Tuple[str, ...]] = {
    "msi": ("M", "S", "I"),
    "mesi": ("M", "E", "S", "I"),
    "moesi": ("M", "O", "E", "S", "I"),
}


@dataclass(frozen=True)
class EncodedState:
    """A coherence state with the dirty half factored out."""

    stored_state: str  # what remains in the tag entry
    dbi_dirty: bool  # the bit that lives in the DBI


class CoherenceAdapter:
    """Split a protocol's states into (dirty, clean-twin) pairs.

    Example (MOESI, paper Section 2.3):
        >>> adapter = CoherenceAdapter("moesi")
        >>> adapter.encode("M")
        EncodedState(stored_state='E', dbi_dirty=True)
        >>> adapter.decode("E", dbi_dirty=False)
        'E'
    """

    def __init__(self, protocol: str) -> None:
        key = protocol.lower()
        if key not in _PROTOCOL_PAIRS:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from "
                f"{sorted(_PROTOCOL_PAIRS)}"
            )
        self.protocol = key
        self.states = _PROTOCOL_STATES[key]
        self._dirty_to_clean = _PROTOCOL_PAIRS[key]
        self._clean_to_dirty = {v: k for k, v in self._dirty_to_clean.items()}

    @property
    def dirty_states(self) -> List[str]:
        return list(self._dirty_to_clean)

    @property
    def stored_states(self) -> List[str]:
        """The states a tag entry can hold after the split."""
        return [s for s in self.states if s not in self._dirty_to_clean]

    def is_dirty_state(self, state: str) -> bool:
        self._check(state)
        return state in self._dirty_to_clean

    def encode(self, state: str) -> EncodedState:
        """Full protocol state -> (tag-entry state, DBI bit)."""
        self._check(state)
        clean_twin = self._dirty_to_clean.get(state)
        if clean_twin is None:
            return EncodedState(stored_state=state, dbi_dirty=False)
        return EncodedState(stored_state=clean_twin, dbi_dirty=True)

    def decode(self, stored_state: str, dbi_dirty: bool) -> str:
        """(tag-entry state, DBI bit) -> full protocol state."""
        if stored_state not in self.stored_states:
            raise ValueError(
                f"{stored_state!r} is not a stored state of {self.protocol}"
            )
        if not dbi_dirty:
            return stored_state
        dirty_twin = self._clean_to_dirty.get(stored_state)
        if dirty_twin is None:
            raise ValueError(
                f"state {stored_state!r} has no dirty twin in {self.protocol}; "
                f"a set DBI bit is inconsistent"
            )
        return dirty_twin

    def tag_state_bits_saved(self) -> int:
        """Tag bits saved by the split: ceil(log2) of states vs stored states."""
        import math

        full = math.ceil(math.log2(len(self.states)))
        stored = math.ceil(math.log2(len(self.stored_states)))
        return full - stored

    def _check(self, state: str) -> None:
        if state not in self.states:
            raise ValueError(f"{state!r} is not a {self.protocol} state")
