"""The paper's contribution: the Dirty-Block Index.

:class:`DirtyBlockIndex` removes per-block dirty bits from the cache tag
store and tracks dirtiness in a small set-associative structure indexed by
DRAM row (or a sub-row *region* when the granularity is below a full row).
Each entry holds a region tag and a bit vector with one bit per block of the
region (paper Figure 1b).

Semantics (paper Section 2.1): **a cache block is dirty iff the DBI holds a
valid entry for its region and the block's bit in that entry is set.**

The structure gives the three properties Section 1 identifies:

1. It is much smaller than the tag store, so dirtiness queries are fast —
   enabling cache lookup bypass (CLB).
2. An entry lists every dirty block of a DRAM row at once — enabling
   aggressive DRAM-aware writeback (AWB) without probing the whole row.
3. It bounds the number of dirty blocks to ``alpha`` times the cache's
   capacity — enabling ECC storage for just the DBI-tracked blocks.
"""

from repro.core.coherence import CoherenceAdapter, EncodedState
from repro.core.config import DbiConfig
from repro.core.dbi import DbiEntry, DbiEviction, DirtyBlockIndex
from repro.core.ecc import EccDomain
from repro.core.replacement import (
    DbiReplacementPolicy,
    LrwBipPolicy,
    LrwPolicy,
    MaxDirtyPolicy,
    MinDirtyPolicy,
    RwipPolicy,
    make_dbi_policy,
)

__all__ = [
    "CoherenceAdapter",
    "EncodedState",
    "DbiConfig",
    "DbiEntry",
    "DbiEviction",
    "DirtyBlockIndex",
    "EccDomain",
    "DbiReplacementPolicy",
    "LrwPolicy",
    "LrwBipPolicy",
    "RwipPolicy",
    "MaxDirtyPolicy",
    "MinDirtyPolicy",
    "make_dbi_policy",
]
