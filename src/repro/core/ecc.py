"""Heterogeneous ECC bookkeeping (paper Section 3.3).

Clean blocks only need error *detection* (a bad clean block can be re-fetched
from the next level); dirty blocks hold the only copy of their data and need
error *correction*. With a DBI, the set of dirty blocks is exactly the set of
blocks tracked by DBI entries, so it suffices to provision SECDED ECC for
``alpha × cache_blocks`` blocks and parity EDC for everything else
(Figure 5).

:class:`EccDomain` is the runtime-side model: it checks the protection
invariant (every dirty block is ECC-covered) and models detection/correction
outcomes for fault-injection tests and the ``repro reliability`` experiment.
:class:`UntrackedEccDomain` is the contrast case — the same reduced ECC
budget *without* a DBI to aim it, which is why the paper argues heterogeneous
ECC needs the DBI: an unprotected dirty block hit by even a single-bit fault
has no good copy anywhere. :class:`SoftErrorInjector` drives either domain
against a live simulation, injecting seeded soft errors into resident LLC
blocks via audit events (timing and results are untouched). The *area*
arithmetic for Table 4 lives in :mod:`repro.area.ecc_model`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.core.dbi import DirtyBlockIndex
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class FaultOutcome:
    """What happened when a fault hit a block."""

    detected: bool
    corrected: bool
    needs_refetch: bool  # clean block: recover from the next level
    data_loss: bool


class EccDomain:
    """Protection model layered over a DBI-managed cache.

    * Every block has parity EDC → any single-bit fault is detected.
    * Blocks tracked by the DBI additionally have SECDED ECC → single-bit
      faults are corrected in place.
    """

    def __init__(self, dbi: DirtyBlockIndex) -> None:
        self._dbi = dbi

    def is_ecc_protected(self, block_addr: int) -> bool:
        """ECC is kept for exactly the blocks the DBI tracks as dirty.

        Uses the stat-free peek: protection checks are observational and
        must not inflate the DBI's query counters.
        """
        return self._dbi.peek_dirty(block_addr)

    def protection_invariant_holds(self) -> bool:
        """Every dirty block must be correctable — true by construction here,
        but exposed so integration tests can assert it against the cache."""
        return all(
            self.is_ecc_protected(block) for block in self._dbi.all_dirty_blocks()
        )

    def inject_single_bit_fault(self, block_addr: int) -> FaultOutcome:
        """Model a single-bit upset in ``block_addr``."""
        if self.is_ecc_protected(block_addr):
            return FaultOutcome(
                detected=True, corrected=True, needs_refetch=False, data_loss=False
            )
        # Clean (or untracked) block: parity detects, next level re-supplies.
        return FaultOutcome(
            detected=True, corrected=False, needs_refetch=True, data_loss=False
        )

    def inject_double_bit_fault(self, block_addr: int) -> FaultOutcome:
        """Model a double-bit upset: SECDED detects, parity may miss."""
        if self.is_ecc_protected(block_addr):
            # SECDED: detected but uncorrectable -> only safe because memory
            # is stale; a dirty block's loss is real data loss.
            return FaultOutcome(
                detected=True, corrected=False, needs_refetch=False, data_loss=True
            )
        # Even-parity EDC misses double-bit flips; the block is clean, so the
        # stale-read risk is bounded by the clean copy in memory being valid.
        return FaultOutcome(
            detected=False, corrected=False, needs_refetch=False, data_loss=False
        )


class UntrackedEccDomain:
    """The same reduced ECC budget *without* a DBI to aim it (Section 3.3).

    A conventional cache cannot cheaply enumerate its dirty blocks, so if it
    only provisions SECDED for a fraction ``coverage`` of blocks it must pick
    that subset blind to dirtiness (here: a seeded hash of the block
    address). The consequence the paper's protection argument hinges on: a
    dirty block outside the covered subset has only parity — a single-bit
    upset is detected but uncorrectable, and memory's copy is stale, so the
    data is gone. ``coverage=1`` recovers uniform full-cache SECDED (the
    expensive design heterogeneous ECC replaces); ``coverage=0`` is
    parity-everywhere.

    Args:
        is_dirty: callable answering "is this block dirty?" — typically the
            tag store's dirty bit (``cache.is_dirty``).
        coverage: fraction of blocks given SECDED (the DBI design spends the
            same budget, α, on exactly the dirty ones).
        seed: selects the covered subset.
    """

    def __init__(self, is_dirty, coverage: Fraction = Fraction(1, 4),
                 seed: int = 0xECC) -> None:
        self._is_dirty = is_dirty
        self.coverage = Fraction(coverage)
        if not 0 <= self.coverage <= 1:
            raise ValueError(f"coverage must be in [0, 1], got {self.coverage}")
        self.seed = seed

    def is_ecc_protected(self, block_addr: int) -> bool:
        """Membership in the fixed, dirtiness-blind SECDED subset."""
        if self.coverage >= 1:
            return True
        if self.coverage <= 0:
            return False
        digest = hashlib.sha256(f"{self.seed}:{block_addr}".encode()).digest()
        roll = int.from_bytes(digest[:8], "big")
        # roll / 2**64 < coverage, in exact integer arithmetic.
        return roll * self.coverage.denominator < self.coverage.numerator << 64

    def protection_invariant_holds(self) -> bool:
        """The DBI guarantee does not hold here unless everything is covered."""
        return self.coverage >= 1

    def inject_single_bit_fault(self, block_addr: int) -> FaultOutcome:
        """Model a single-bit upset in ``block_addr``."""
        if self.is_ecc_protected(block_addr):
            return FaultOutcome(
                detected=True, corrected=True, needs_refetch=False, data_loss=False
            )
        if not self._is_dirty(block_addr):
            return FaultOutcome(
                detected=True, corrected=False, needs_refetch=True, data_loss=False
            )
        # Untracked dirty block: parity detects but cannot correct, and the
        # only up-to-date copy was the one just corrupted.
        return FaultOutcome(
            detected=True, corrected=False, needs_refetch=False, data_loss=True
        )

    def inject_double_bit_fault(self, block_addr: int) -> FaultOutcome:
        """Model a double-bit upset: SECDED detects, parity misses."""
        if self.is_ecc_protected(block_addr):
            return FaultOutcome(
                detected=True, corrected=False, needs_refetch=False,
                data_loss=self._is_dirty(block_addr),
            )
        if not self._is_dirty(block_addr):
            return FaultOutcome(
                detected=False, corrected=False, needs_refetch=False,
                data_loss=False,
            )
        # Silent corruption of dirty data — the worst outcome on the chart.
        return FaultOutcome(
            detected=False, corrected=False, needs_refetch=False, data_loss=True
        )


@dataclass(frozen=True)
class SoftErrorConfig:
    """Knobs of one soft-error injection campaign over a live simulation.

    Deliberately *not* part of :class:`~repro.sim.system.SystemConfig`:
    injection is observational (audit events), so sweep-cache keys must not
    depend on it — exactly like the ``check`` flag.

    Attributes:
        faults: upsets to inject (fewer if the run ends first).
        interval: cycles between injections.
        start: cycle of the first injection.
        seed: drives both target-block choice and single/double selection.
        double_bit_fraction: fraction of injections that are double-bit
            upsets (0 reproduces the paper's single-event-upset argument).
        coverage: SECDED coverage fraction for the untracked contrast
            domain; None uses the system's DBI α, i.e. the same budget.
    """

    faults: int = 200
    interval: int = 500
    start: int = 1_000
    seed: int = 0x5EED
    double_bit_fraction: float = 0.0
    coverage: Optional[Fraction] = None


class SoftErrorInjector:
    """Inject seeded soft errors into resident LLC blocks during a run.

    Attaches to the system's event queue with audit events (like the
    :class:`~repro.check.engine.CheckEngine`), so ``events_processed``,
    timing and every :class:`~repro.sim.system.SimulationResult` stat are
    byte-identical with and without injection — the campaign only *reads*
    machine state and tallies :class:`FaultOutcome`s.

    Domain selection: a mechanism that keeps its dirty bits in a DBI gets
    :class:`EccDomain` (ECC aimed at exactly the dirty blocks); anything
    else gets :class:`UntrackedEccDomain` over its tag-store dirty bits with
    the same α budget — the paper's §3.3 contrast.
    """

    def __init__(self, system, config: SoftErrorConfig) -> None:
        self.system = system
        self.config = config
        self.rng = DeterministicRng(config.seed).derive("soft-errors")
        mechanism = system.mechanism
        dbi = getattr(mechanism, "dbi", None)
        if dbi is not None and not mechanism.uses_tag_dirty_bits:
            self.domain = EccDomain(dbi)
            self.tracked = True
        else:
            coverage = config.coverage
            if coverage is None:
                coverage = system.config.dbi_alpha
            self.domain = UntrackedEccDomain(
                system.llc.is_dirty, coverage=coverage, seed=config.seed
            )
            self.tracked = False
        self.counts: Dict[str, int] = {
            "injected": 0,
            "single_bit": 0,
            "double_bit": 0,
            "dirty_targets": 0,
            "detected": 0,
            "corrected": 0,
            "refetched": 0,
            "data_loss": 0,
            "skipped_empty": 0,
            "protection_violations": 0,
        }

    # ------------------------------------------------------------- wiring

    def attach(self) -> None:
        """Arm the first injection tick."""
        queue = self.system.queue
        start = max(self.config.start, queue.now)
        queue.schedule(start, self._tick, audit=True)

    def _tick(self) -> None:
        if self.counts["injected"] < self.config.faults:
            self.inject_once()
        # Re-arm only while real work remains — a standing audit event would
        # keep EventQueue.run() from ever draining (see CheckEngine._arm).
        if (
            self.counts["injected"] < self.config.faults
            and len(self.system.queue) > 0
        ):
            self.system.queue.schedule_after(
                self.config.interval, self._tick, audit=True
            )

    # ---------------------------------------------------------- injection

    def _pick_target(self) -> Optional[int]:
        """A resident LLC block, chosen uniformly and deterministically."""
        resident = sorted(
            block.addr for block in self.system.llc.iter_valid_blocks()
        )
        if not resident:
            return None
        return resident[self.rng.randint(0, len(resident) - 1)]

    def inject_once(self) -> Optional[FaultOutcome]:
        """Inject one upset into a resident block and tally the outcome."""
        target = self._pick_target()
        if target is None:
            self.counts["skipped_empty"] += 1
            return None
        double = self.rng.chance(self.config.double_bit_fraction)
        self.counts["injected"] += 1
        self.counts["double_bit" if double else "single_bit"] += 1
        dirty = (
            self.domain.is_ecc_protected(target)  # DBI-dirty, stat-free
            if self.tracked
            else self.system.llc.is_dirty(target)
        )
        if dirty:
            self.counts["dirty_targets"] += 1
        if double:
            outcome = self.domain.inject_double_bit_fault(target)
        else:
            outcome = self.domain.inject_single_bit_fault(target)
        if outcome.detected:
            self.counts["detected"] += 1
        if outcome.corrected:
            self.counts["corrected"] += 1
        if outcome.needs_refetch:
            self.counts["refetched"] += 1
        if outcome.data_loss:
            self.counts["data_loss"] += 1
        if self.tracked and not self.domain.protection_invariant_holds():
            self.counts["protection_violations"] += 1
        return outcome
