"""Heterogeneous ECC bookkeeping (paper Section 3.3).

Clean blocks only need error *detection* (a bad clean block can be re-fetched
from the next level); dirty blocks hold the only copy of their data and need
error *correction*. With a DBI, the set of dirty blocks is exactly the set of
blocks tracked by DBI entries, so it suffices to provision SECDED ECC for
``alpha × cache_blocks`` blocks and parity EDC for everything else
(Figure 5).

:class:`EccDomain` is the runtime-side model: it checks the protection
invariant (every dirty block is ECC-covered) and models detection/correction
outcomes for fault-injection tests and the reliability example. The *area*
arithmetic for Table 4 lives in :mod:`repro.area.ecc_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dbi import DirtyBlockIndex


@dataclass(frozen=True)
class FaultOutcome:
    """What happened when a fault hit a block."""

    detected: bool
    corrected: bool
    needs_refetch: bool  # clean block: recover from the next level
    data_loss: bool


class EccDomain:
    """Protection model layered over a DBI-managed cache.

    * Every block has parity EDC → any single-bit fault is detected.
    * Blocks tracked by the DBI additionally have SECDED ECC → single-bit
      faults are corrected in place.
    """

    def __init__(self, dbi: DirtyBlockIndex) -> None:
        self._dbi = dbi

    def is_ecc_protected(self, block_addr: int) -> bool:
        """ECC is kept for exactly the blocks the DBI tracks as dirty."""
        return self._dbi.is_dirty(block_addr)

    def protection_invariant_holds(self) -> bool:
        """Every dirty block must be correctable — true by construction here,
        but exposed so integration tests can assert it against the cache."""
        return all(
            self.is_ecc_protected(block) for block in self._dbi.all_dirty_blocks()
        )

    def inject_single_bit_fault(self, block_addr: int) -> FaultOutcome:
        """Model a single-bit upset in ``block_addr``."""
        if self.is_ecc_protected(block_addr):
            return FaultOutcome(
                detected=True, corrected=True, needs_refetch=False, data_loss=False
            )
        # Clean (or untracked) block: parity detects, next level re-supplies.
        return FaultOutcome(
            detected=True, corrected=False, needs_refetch=True, data_loss=False
        )

    def inject_double_bit_fault(self, block_addr: int) -> FaultOutcome:
        """Model a double-bit upset: SECDED detects, parity may miss."""
        if self.is_ecc_protected(block_addr):
            # SECDED: detected but uncorrectable -> only safe because memory
            # is stale; a dirty block's loss is real data loss.
            return FaultOutcome(
                detected=True, corrected=False, needs_refetch=False, data_loss=True
            )
        # Even-parity EDC misses double-bit flips; the block is clean, so the
        # stale-read risk is bounded by the clean copy in memory being valid.
        return FaultOutcome(
            detected=False, corrected=False, needs_refetch=False, data_loss=False
        )
