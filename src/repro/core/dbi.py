"""The Dirty-Block Index structure (paper Section 2).

Operations mirror Section 2.2:

* a *writeback request* from the previous cache level calls
  :meth:`mark_dirty`, which may trigger a **DBI eviction** — the evicted
  entry's dirty blocks must then be written back to memory (they stay in the
  cache, transitioning dirty → clean);
* a *cache eviction* calls :meth:`is_dirty` and, if set, :meth:`mark_clean`;
  clearing the last bit of an entry invalidates the entry (Section 2.2.3);
* AWB asks :meth:`dirty_blocks_in_region` for the bit-vector's block list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.config import DbiConfig
from repro.core.replacement import make_dbi_policy
from repro.utils.bits import iter_set_bits, popcount
from repro.utils.rng import DeterministicRng
from repro.utils.stats import StatGroup


class DbiEntry:
    """One DBI entry: valid bit, region (row) tag, dirty-bit vector."""

    __slots__ = ("valid", "region_id", "bitvector")

    def __init__(self) -> None:
        self.valid = False
        self.region_id = -1
        self.bitvector = 0

    def install(self, region_id: int) -> None:
        self.valid = True
        self.region_id = region_id
        self.bitvector = 0

    def invalidate(self) -> None:
        self.valid = False
        self.region_id = -1
        self.bitvector = 0

    @property
    def dirty_count(self) -> int:
        return popcount(self.bitvector)

    def __repr__(self) -> str:
        if not self.valid:
            return "DbiEntry(invalid)"
        return f"DbiEntry(region={self.region_id}, bits={self.bitvector:b})"


@dataclass(frozen=True)
class DbiEviction:
    """Result of evicting a DBI entry: the blocks that must be written back."""

    region_id: int
    dirty_blocks: Tuple[int, ...]


class DirtyBlockIndex:
    """Set-associative index of dirty blocks, keyed by DRAM-row region.

    Example:
        >>> dbi = DirtyBlockIndex(DbiConfig(cache_blocks=1024, granularity=16,
        ...                                 associativity=4))
        >>> dbi.mark_dirty(5)
        >>> dbi.is_dirty(5)
        True
        >>> dbi.dirty_blocks_in_region(5)
        [5]
    """

    #: Optional dirty-transition observer (full checked mode attaches the
    #: CheckEngine here); class attribute so unchecked runs pay only an
    #: ``is not None`` test.
    observer = None

    def __init__(
        self,
        config: DbiConfig,
        rng: Optional[DeterministicRng] = None,
        stat_name: Optional[str] = None,
    ) -> None:
        self.config = config
        self.sets: List[List[DbiEntry]] = [
            [DbiEntry() for _ in range(config.associativity)]
            for _ in range(config.num_sets)
        ]
        self.policy = make_dbi_policy(
            config.replacement, config.num_sets, config.associativity, rng=rng
        )
        # stat_name disambiguates instances in one system (the LLC
        # mechanism's DBI vs. the DRAM-cache level's DBI).
        self.stats = StatGroup(stat_name or "dbi")
        # region_id -> way for O(1) lookup; the set index is derivable.
        self._where = {}
        # Per-query counters, bound lazily (see Cache for rationale).
        self._c_queries = None
        self._c_writes = None

    # -------------------------------------------------------------- queries

    def _entry(self, region_id: int) -> Optional[DbiEntry]:
        way = self._where.get(region_id)
        if way is None:
            return None
        return self.sets[self.config.set_of(region_id)][way]

    def _count_query(self) -> None:
        counter = self._c_queries
        if counter is None:
            counter = self._c_queries = self.stats.counter("queries")
        counter.value += 1

    def is_dirty(self, block_addr: int) -> bool:
        """Paper's DBI semantics: valid entry AND bit set."""
        self._count_query()
        return self.peek_dirty(block_addr)

    @property
    def live_entries(self) -> int:
        """Valid entries right now (telemetry occupancy gauge; stat-free)."""
        return len(self._where)

    @property
    def live_dirty_blocks(self) -> int:
        """Dirty bits set across all valid entries (stat-free)."""
        return sum(
            entry.dirty_count
            for ways in self.sets
            for entry in ways
            if entry.valid
        )

    def peek_dirty(self, block_addr: int) -> bool:
        """Stat-free :meth:`is_dirty` for observational tooling.

        ECC domains, invariant checkers and the soft-error injector must be
        able to ask "is this block dirty?" without perturbing the query
        counters a real lookup would pay — their runs are required to report
        byte-identical statistics to uninstrumented ones.
        """
        entry = self._entry(self.config.region_of(block_addr))
        if entry is None:
            return False
        return bool(entry.bitvector >> self.config.offset_of(block_addr) & 1)

    def dirty_blocks_in_region(self, block_addr: int) -> List[int]:
        """All dirty block addresses in ``block_addr``'s region (one query).

        This is the single-lookup row enumeration that makes AWB cheap
        (paper Section 3.1, Figure 3).
        """
        self._count_query()
        region_id = self.config.region_of(block_addr)
        entry = self._entry(region_id)
        if entry is None:
            return []
        return [
            self.config.block_of(region_id, offset)
            for offset in iter_set_bits(entry.bitvector)
        ]

    # -------------------------------------------------------------- updates

    def mark_dirty(self, block_addr: int) -> Optional[DbiEviction]:
        """Record a writeback to ``block_addr`` (Section 2.2.2).

        Returns:
            A :class:`DbiEviction` if installing a new entry displaced an
            existing one — the caller must write those blocks back to memory
            and transition them dirty → clean in the cache. None otherwise.
        """
        counter = self._c_writes
        if counter is None:
            counter = self._c_writes = self.stats.counter("writes")
        counter.value += 1
        region_id = self.config.region_of(block_addr)
        offset = self.config.offset_of(block_addr)
        set_idx = self.config.set_of(region_id)

        way = self._where.get(region_id)
        if way is not None:
            entry = self.sets[set_idx][way]
            if self.observer is not None and not entry.bitvector >> offset & 1:
                self.observer.on_block_dirtied(block_addr)
            entry.bitvector |= 1 << offset
            self.policy.on_write(set_idx, way)
            return None

        evicted = None
        ways = self.sets[set_idx]
        target_way = None
        for candidate_way, entry in enumerate(ways):
            if not entry.valid:
                target_way = candidate_way
                break
        if target_way is None:
            target_way = self.policy.victim_way(set_idx, ways)
            victim = ways[target_way]
            evicted = DbiEviction(
                region_id=victim.region_id,
                dirty_blocks=tuple(
                    self.config.block_of(victim.region_id, bit)
                    for bit in iter_set_bits(victim.bitvector)
                ),
            )
            del self._where[victim.region_id]
            self.stats.counter("evictions").increment()
            self.stats.counter("evicted_dirty_blocks").increment(
                len(evicted.dirty_blocks)
            )
            if self.observer is not None:
                # The displaced entry's blocks stay cached but transition
                # dirty -> clean; the mechanism writes each back (Sec 2.2.4).
                for block in evicted.dirty_blocks:
                    self.observer.on_block_cleaned(block)

        entry = ways[target_way]
        entry.install(region_id)
        entry.bitvector = 1 << offset
        self._where[region_id] = target_way
        self.policy.on_insert(set_idx, target_way)
        self.stats.counter("entry_insertions").increment()
        if self.observer is not None:
            self.observer.on_block_dirtied(block_addr)
        return evicted

    def mark_clean(self, block_addr: int) -> bool:
        """Clear a block's bit (cache eviction / proactive writeback).

        Invalidates the entry when its last bit clears (Section 2.2.3).

        Every caller decides to write a block back *because* the DBI says it
        is dirty, so clearing an unset bit means that decision was made on
        stale state — a double writeback or a phantom dirty block. Guard
        with :meth:`is_dirty` for test-and-clear usage.

        Returns:
            True (the block was dirty; kept for backward compatibility).

        Raises:
            ValueError: if the block is not currently marked dirty.
        """
        region_id = self.config.region_of(block_addr)
        way = self._where.get(region_id)
        if way is None:
            raise ValueError(
                f"mark_clean({block_addr:#x}): no DBI entry for region "
                f"{region_id} — the block is not dirty"
            )
        set_idx = self.config.set_of(region_id)
        entry = self.sets[set_idx][way]
        bit = 1 << self.config.offset_of(block_addr)
        if not entry.bitvector & bit:
            raise ValueError(
                f"mark_clean({block_addr:#x}): bit already clear in region "
                f"{region_id} — the block is not dirty"
            )
        if self.observer is not None:
            self.observer.on_block_cleaned(block_addr)
        entry.bitvector &= ~bit
        if entry.bitvector == 0:
            entry.invalidate()
            del self._where[region_id]
            self.policy.on_invalidate(set_idx, way)
            self.stats.counter("entries_emptied").increment()
        return True

    def drop_region(self, block_addr: int) -> List[int]:
        """Invalidate a whole entry, returning the blocks that were dirty.

        Used when a DBI eviction is performed atomically (plain-DBI path) or
        when flushing (Section 7, cache flushing).
        """
        region_id = self.config.region_of(block_addr)
        way = self._where.get(region_id)
        if way is None:
            return []
        set_idx = self.config.set_of(region_id)
        entry = self.sets[set_idx][way]
        blocks = [
            self.config.block_of(region_id, bit)
            for bit in iter_set_bits(entry.bitvector)
        ]
        if self.observer is not None:
            for block in blocks:
                self.observer.on_block_cleaned(block)
        entry.invalidate()
        del self._where[region_id]
        self.policy.on_invalidate(set_idx, way)
        return blocks

    # ----------------------------------------- Section 7 extension queries

    def region_has_dirty(self, region_id: int) -> bool:
        """Answer "does DRAM row R have any dirty blocks?" in one query.

        Paper Section 7 ("Fast Lookup for Dirty Status"): opportunistic
        memory schedulers can steer writes using this without touching the
        tag store.
        """
        self._count_query()
        return region_id in self._where

    def any_dirty_in_range(self, start_block: int, end_block: int) -> bool:
        """Is any block in [start_block, end_block) dirty?

        Paper Section 7 ("Direct Memory Access"): a bulk DMA read must not
        bypass dirty cached data; one ranged DBI query covers the whole
        transfer instead of per-block tag lookups.
        """
        if end_block <= start_block:
            return False
        self._count_query()
        first_region = self.config.region_of(start_block)
        last_region = self.config.region_of(end_block - 1)
        granularity = self.config.granularity
        for region_id in range(first_region, last_region + 1):
            entry = self._entry(region_id)
            if entry is None:
                continue
            region_base = region_id * granularity
            low = max(0, start_block - region_base)
            high = min(granularity, end_block - region_base)
            window = ((1 << (high - low)) - 1) << low
            if entry.bitvector & window:
                return True
        return False

    def flush(self) -> List[List[int]]:
        """Drop every entry, returning dirty blocks grouped by region.

        Paper Section 7 ("Cache Flushing"): bank power-down or a persistence
        epoch must write back all dirty blocks; the DBI yields them directly
        and row-batched (each inner list drains as DRAM row hits), where a
        conventional cache must walk its whole tag store.
        """
        groups: List[List[int]] = []
        for entry in list(self.iter_valid_entries()):
            blocks = [
                self.config.block_of(entry.region_id, bit)
                for bit in iter_set_bits(entry.bitvector)
            ]
            groups.append(blocks)
        if self.observer is not None:
            for blocks in groups:
                for block in blocks:
                    self.observer.on_block_cleaned(block)
        for ways in self.sets:
            for entry in ways:
                entry.invalidate()
        count = len(self._where)
        self._where.clear()
        self.stats.counter("flushes").increment()
        self.stats.counter("flushed_entries").increment(count)
        return groups

    # ----------------------------------------------------------- inspection

    def iter_valid_entries(self) -> Iterator[DbiEntry]:
        for ways in self.sets:
            for entry in ways:
                if entry.valid:
                    yield entry

    @property
    def entry_count(self) -> int:
        return len(self._where)

    @property
    def tracked_dirty_blocks(self) -> int:
        """Total dirty blocks currently recorded across all entries."""
        return sum(entry.dirty_count for entry in self.iter_valid_entries())

    def all_dirty_blocks(self) -> List[int]:
        """Every block address currently marked dirty (flush support)."""
        blocks = []
        for entry in self.iter_valid_entries():
            blocks.extend(
                self.config.block_of(entry.region_id, bit)
                for bit in iter_set_bits(entry.bitvector)
            )
        return blocks
