"""DBI replacement policies (paper Section 4.3).

The goal of DBI replacement differs from cache replacement: evicting an entry
does not evict blocks, it forces their early writeback. A good policy avoids
*premature* writebacks — blocks that the upper levels will soon re-dirty.

The paper evaluates five practical policies and finds LRW (least recently
written) comparable-or-best; we implement all five for the Section 6.4
ablation:

1. ``lrw`` — least recently written (analogue of LRU).
2. ``lrw-bip`` — LRW with bimodal insertion [42].
3. ``rwip`` — rewrite-interval prediction (RRIP analogue [19]).
4. ``max-dirty`` — evict the entry with the most dirty blocks.
5. ``min-dirty`` — evict the entry with the fewest dirty blocks.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.utils.bits import popcount
from repro.utils.rng import DeterministicRng


class DbiReplacementPolicy(abc.ABC):
    """Interface between the DBI and its replacement state.

    ``entries`` passed to :meth:`victim_way` is the set's entry list; count
    policies inspect the bit vectors, recency policies ignore them.
    """

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("num_sets and num_ways must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abc.abstractmethod
    def on_write(self, set_idx: int, way: int) -> None:
        """A dirty bit was set in an existing entry."""

    @abc.abstractmethod
    def on_insert(self, set_idx: int, way: int) -> None:
        """A fresh entry was installed in ``way``."""

    @abc.abstractmethod
    def victim_way(self, set_idx: int, entries: Sequence) -> int:
        """Pick the entry to evict (all ways valid)."""

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """An entry became empty and was freed; default: nothing."""


class LrwPolicy(DbiReplacementPolicy):
    """Least Recently Written — the paper's default."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._stacks: List[List[int]] = [list(range(num_ways)) for _ in range(num_sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        stack = self._stacks[set_idx]
        stack.remove(way)
        stack.append(way)

    def on_write(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)

    def on_insert(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)

    def victim_way(self, set_idx: int, entries: Sequence) -> int:
        return self._stacks[set_idx][0]

    def on_invalidate(self, set_idx: int, way: int) -> None:
        stack = self._stacks[set_idx]
        stack.remove(way)
        stack.insert(0, way)


class LrwBipPolicy(LrwPolicy):
    """LRW with bimodal insertion: most new entries start at the LRW end."""

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rng: Optional[DeterministicRng] = None,
        epsilon: float = 1.0 / 64.0,
    ) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = rng or DeterministicRng(seed=0x1B1D)
        self.epsilon = epsilon

    def on_insert(self, set_idx: int, way: int) -> None:
        if self._rng.chance(self.epsilon):
            self._touch(set_idx, way)
        else:
            stack = self._stacks[set_idx]
            stack.remove(way)
            stack.insert(0, way)


class RwipPolicy(DbiReplacementPolicy):
    """Rewrite-Interval Prediction — RRIP [19] adapted to write recency."""

    def __init__(self, num_sets: int, num_ways: int, rwpv_bits: int = 2) -> None:
        super().__init__(num_sets, num_ways)
        self.max_rwpv = (1 << rwpv_bits) - 1
        self._rwpv: List[List[int]] = [
            [self.max_rwpv] * num_ways for _ in range(num_sets)
        ]

    def on_write(self, set_idx: int, way: int) -> None:
        self._rwpv[set_idx][way] = 0

    def on_insert(self, set_idx: int, way: int) -> None:
        self._rwpv[set_idx][way] = self.max_rwpv - 1

    def victim_way(self, set_idx: int, entries: Sequence) -> int:
        values = self._rwpv[set_idx]
        while True:
            for way, value in enumerate(values):
                if value == self.max_rwpv:
                    return way
            for way in range(self.num_ways):
                values[way] += 1

    def on_invalidate(self, set_idx: int, way: int) -> None:
        self._rwpv[set_idx][way] = self.max_rwpv


class _CountBasedPolicy(DbiReplacementPolicy):
    """Shared machinery for Max-Dirty / Min-Dirty."""

    def on_write(self, set_idx: int, way: int) -> None:
        pass

    def on_insert(self, set_idx: int, way: int) -> None:
        pass

    @staticmethod
    def _counts(entries: Sequence) -> List[int]:
        return [popcount(entry.bitvector) for entry in entries]


class MaxDirtyPolicy(_CountBasedPolicy):
    """Evict the entry with the most dirty blocks (amortize the burst)."""

    def victim_way(self, set_idx: int, entries: Sequence) -> int:
        counts = self._counts(entries)
        return max(range(len(counts)), key=counts.__getitem__)


class MinDirtyPolicy(_CountBasedPolicy):
    """Evict the entry with the fewest dirty blocks (minimize the burst)."""

    def victim_way(self, set_idx: int, entries: Sequence) -> int:
        counts = self._counts(entries)
        return min(range(len(counts)), key=counts.__getitem__)


def make_dbi_policy(
    name: str,
    num_sets: int,
    num_ways: int,
    rng: Optional[DeterministicRng] = None,
) -> DbiReplacementPolicy:
    """Factory keyed by the Section 4.3 policy names."""
    key = name.lower()
    if key == "lrw":
        return LrwPolicy(num_sets, num_ways)
    if key in ("lrw-bip", "lrw_bip"):
        return LrwBipPolicy(num_sets, num_ways, rng=rng)
    if key == "rwip":
        return RwipPolicy(num_sets, num_ways)
    if key in ("max-dirty", "max_dirty"):
        return MaxDirtyPolicy(num_sets, num_ways)
    if key in ("min-dirty", "min_dirty"):
        return MinDirtyPolicy(num_sets, num_ways)
    raise ValueError(f"unknown DBI replacement policy {name!r}")
