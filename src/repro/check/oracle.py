"""Golden architectural reference model (untimed).

A tiny cache+dirty-set simulator that replays a trace with no events, no
latencies and no port arbitration, yet lands on exactly the same
*architectural* state as the timing simulator when the timing simulator is
driven one request at a time (see :mod:`repro.check.differential`): cache
contents at every level, dirty sets, DBI entry bit-vectors and total memory
writebacks. Only timing and traffic interleaving may differ.

Ordering contract mirrored from the timing stack (one trace record = "op"):

1. the LLC read (lookup + fill + fill-eviction handling) happens first;
2. demand writeback requests raised by L2/L1 fills of the same op execute
   immediately (the tag port grants DEMAND before queued BACKGROUND work);
3. background probes (DAWB/VWQ row probes, AWB flushes, DBI-entry-eviction
   writebacks) queue in FIFO order and drain at the end of the op.

**Oracle v2 — scheduled replay.** With a
:class:`~repro.check.schedule.DrainSchedule` attached (recorded from the
timed run), the split of responsibilities is explicit: the oracle decides
*what* happens architecturally — which blocks a probe round writes back,
which reads miss — and the witness decides *when*: background writebacks
are validated against the recorded per-op multiset and emitted downstream
in the recorded order, and timing-dependent fetches the oracle cannot
predict (CLB's bypassed-but-resident reads, Skip Cache's bypasses) are
replayed from the recording. Any disagreement — a drain the timing side
never performed, a recorded drain the oracle never decided, an unexpected
fetch — lands in ``schedule_failures`` with the op index attached. This is
what lets ``repro check-diff`` cover every mechanism family, including
below a DRAM-cache level whose LRU state is order-sensitive.

Replacement is LRU everywhere (the differential harness pins the timing
side to LRU too, since TA-DIP's set-dueling is exercised elsewhere).
"""

from __future__ import annotations

from collections import Counter, OrderedDict, deque
from typing import Dict, List, Optional, Set, Tuple

from repro.check.schedule import DrainSchedule


class RefLruCache:
    """Set-associative LRU cache as per-set ``OrderedDict`` (LRU first)."""

    def __init__(self, num_blocks: int, associativity: int) -> None:
        if num_blocks % associativity:
            raise ValueError("num_blocks must be a multiple of associativity")
        self.associativity = associativity
        self.num_sets = num_blocks // associativity
        # addr -> dirty flag; iteration order is LRU -> MRU.
        self.sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def set_index(self, addr: int) -> int:
        return addr % self.num_sets

    def _set(self, addr: int) -> "OrderedDict[int, bool]":
        return self.sets[self.set_index(addr)]

    def contains(self, addr: int) -> bool:
        return addr in self._set(addr)

    def is_dirty(self, addr: int) -> bool:
        return self._set(addr).get(addr, False)

    def lookup(self, addr: int) -> bool:
        """Demand lookup: promotes on hit."""
        blocks = self._set(addr)
        if addr in blocks:
            blocks.move_to_end(addr)
            return True
        return False

    def touch(self, addr: int) -> bool:
        blocks = self._set(addr)
        if addr not in blocks:
            return False
        blocks.move_to_end(addr)
        return True

    def insert(self, addr: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Install ``addr``; returns ``(victim_addr, victim_dirty)`` if any.

        Mirrors ``Cache.insert``: a present block merges (dirty OR, promote).
        """
        blocks = self._set(addr)
        if addr in blocks:
            blocks[addr] = blocks[addr] or dirty
            blocks.move_to_end(addr)
            return None
        evicted = None
        if len(blocks) >= self.associativity:
            victim_addr, victim_dirty = next(iter(blocks.items()))
            del blocks[victim_addr]
            evicted = (victim_addr, victim_dirty)
        blocks[addr] = dirty
        return evicted

    def mark_dirty(self, addr: int) -> bool:
        blocks = self._set(addr)
        if addr not in blocks:
            return False
        blocks[addr] = True
        return True

    def mark_clean(self, addr: int) -> bool:
        blocks = self._set(addr)
        if addr not in blocks:
            return False
        blocks[addr] = False
        return True

    def blocks(self) -> Set[int]:
        return {addr for blocks in self.sets for addr in blocks}

    def dirty_blocks(self) -> Set[int]:
        return {
            addr
            for blocks in self.sets
            for addr, dirty in blocks.items()
            if dirty
        }

    def lru_valid_half(self, set_idx: int) -> List[int]:
        """First ceil(n/2) blocks of a set in LRU order (VWQ's SSV scope)."""
        blocks = list(self.sets[set_idx])
        if not blocks:
            return []
        return blocks[: (len(blocks) + 1) // 2]


class RefDbi:
    """Untimed Dirty-Block Index with LRW replacement.

    Per-set ``OrderedDict`` of ``region_id -> set(offsets)``, iteration order
    least-recently-written first. Physical way placement is abstracted away —
    it never affects which *region* is displaced.
    """

    def __init__(self, num_entries: int, associativity: int, granularity: int):
        if num_entries % associativity:
            raise ValueError("num_entries must be a multiple of associativity")
        self.associativity = associativity
        self.num_sets = num_entries // associativity
        self.granularity = granularity
        self.sets: List["OrderedDict[int, Set[int]]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def region_of(self, addr: int) -> int:
        return addr // self.granularity

    def _set(self, region_id: int) -> "OrderedDict[int, Set[int]]":
        return self.sets[region_id % self.num_sets]

    def is_dirty(self, addr: int) -> bool:
        region_id = self.region_of(addr)
        offsets = self._set(region_id).get(region_id)
        return offsets is not None and (addr % self.granularity) in offsets

    def mark_dirty(self, addr: int) -> List[int]:
        """Set a block's bit; returns the blocks of a displaced entry (LRW)."""
        region_id = self.region_of(addr)
        entries = self._set(region_id)
        evicted: List[int] = []
        if region_id in entries:
            entries[region_id].add(addr % self.granularity)
            entries.move_to_end(region_id)  # on_write touches LRW-MRU
            return evicted
        if len(entries) >= self.associativity:
            victim_region, offsets = next(iter(entries.items()))
            del entries[victim_region]
            evicted = [
                victim_region * self.granularity + offset
                for offset in sorted(offsets)
            ]
        entries[region_id] = {addr % self.granularity}
        return evicted

    def mark_clean(self, addr: int) -> None:
        region_id = self.region_of(addr)
        entries = self._set(region_id)
        offsets = entries.get(region_id)
        if offsets is None or (addr % self.granularity) not in offsets:
            raise KeyError(f"block {addr:#x} is not dirty in the reference DBI")
        offsets.discard(addr % self.granularity)
        if not offsets:
            del entries[region_id]

    def dirty_in_region(self, addr: int) -> List[int]:
        region_id = self.region_of(addr)
        offsets = self._set(region_id).get(region_id, ())
        return [region_id * self.granularity + offset for offset in sorted(offsets)]

    def dirty_blocks(self) -> Set[int]:
        return {
            region_id * self.granularity + offset
            for entries in self.sets
            for region_id, offsets in entries.items()
            for offset in offsets
        }

    def entries(self) -> Dict[int, int]:
        """``region_id -> bit vector`` over all valid entries."""
        return {
            region_id: sum(1 << offset for offset in offsets)
            for entries in self.sets
            for region_id, offsets in entries.items()
        }


class RefDramCache:
    """Untimed die-stacked DRAM-cache level below the LLC mechanism.

    Mirrors :class:`repro.dramcache.level.DramCacheLevel` architecturally:
    LRU tags, write-allocate, and either in-tag dirty bits ("tag" backend)
    or a :class:`RefDbi` with aggressive whole-row writeback on eviction
    ("dbi" backend). ``offchip_writes`` counts blocks written below the
    level — the quantity conserved against the timing side.
    """

    def __init__(
        self,
        num_blocks: int,
        associativity: int,
        backend: str = "tag",
        dbi_entries: int = 0,
        dbi_associativity: int = 0,
        dbi_granularity: int = 0,
    ) -> None:
        if backend not in ("tag", "dbi"):
            raise ValueError(f"unknown dirty backend {backend!r}")
        self.backend = backend
        self.tags = RefLruCache(num_blocks, associativity)
        self.dbi: Optional[RefDbi] = None
        if backend == "dbi":
            self.dbi = RefDbi(dbi_entries, dbi_associativity, dbi_granularity)
        self.received_reads = 0
        self.received_writes = 0
        self.offchip_writes = 0

    # The level is below every queue in the timing stack, so its updates
    # are synchronous here: one timing request = one call, in op order.

    def read(self, addr: int) -> None:
        self.received_reads += 1
        if self.tags.lookup(addr):
            return
        evicted = self.tags.insert(addr, dirty=False)
        if evicted is not None:
            self._handle_eviction(*evicted)

    def write(self, addr: int) -> None:
        self.received_writes += 1
        if self.tags.contains(addr):
            self.tags.touch(addr)
            self._mark_dirty(addr)
            return
        if self.backend == "dbi":
            evicted = self.tags.insert(addr, dirty=False)
            if evicted is not None:
                self._handle_eviction(*evicted)
            self._mark_dirty(addr)
        else:
            evicted = self.tags.insert(addr, dirty=True)
            if evicted is not None:
                self._handle_eviction(*evicted)

    def _mark_dirty(self, addr: int) -> None:
        if self.backend == "dbi":
            for _block in self.dbi.mark_dirty(addr):
                # Displaced DBI entry: its blocks stay cached, now clean,
                # and their data goes off-chip immediately.
                self.offchip_writes += 1
        else:
            self.tags.mark_dirty(addr)

    def _handle_eviction(self, addr: int, tag_dirty: bool) -> None:
        if self.backend == "dbi":
            if self.dbi.is_dirty(addr):
                self.dbi.mark_clean(addr)
                self.offchip_writes += 1
                for other in self.dbi.dirty_in_region(addr):
                    # Aggressive writeback: the whole dirty row leaves.
                    self.dbi.mark_clean(other)
                    self.offchip_writes += 1
            return
        if tag_dirty:
            self.offchip_writes += 1

    def blocks(self) -> Set[int]:
        return self.tags.blocks()

    def dirty_blocks(self) -> Set[int]:
        if self.backend == "dbi":
            return self.dbi.dirty_blocks()
        return self.tags.dirty_blocks()

    def dbi_entries(self) -> Dict[int, int]:
        if self.dbi is None:
            return {}
        return self.dbi.entries()


#: How each Table 2 mechanism behaves architecturally.
_KIND_OF = {
    "baseline": "conventional",
    "tadip": "conventional",
    "dawb": "dawb",
    "vwq": "vwq",
    "skipcache": "writethrough",
    "dbi": "dbi",
    "dbi+awb": "dbi",
    "dbi+clb": "dbi",
    "dbi+awb+clb": "dbi",
}


class OracleMechanism:
    """Architectural model of one LLC mechanism.

    CLB is modelled as a plain lookup because bypass-with-fill is
    content-neutral by design (the fill still installs/promotes the block);
    only traffic differs, which the oracle does not assert on.
    """

    def __init__(
        self,
        name: str,
        llc: Optional[RefLruCache],
        row_blocks: int,
        dbi: Optional[RefDbi] = None,
        dram_cache: Optional[RefDramCache] = None,
        schedule: Optional[DrainSchedule] = None,
    ) -> None:
        if name not in _KIND_OF:
            raise ValueError(f"unknown mechanism {name!r}")
        self.name = name
        self.kind = _KIND_OF[name]
        self.enable_awb = "awb" in name
        self.llc = llc
        self.row_blocks = row_blocks
        self.dbi = dbi
        self.dram_cache = dram_cache
        self.schedule = schedule
        if self.kind == "dbi" and dbi is None:
            raise ValueError(f"{name} needs a RefDbi")
        if llc is None and self.kind != "writethrough":
            # Only write-through (skipcache) tolerates an unmodelled LLC:
            # its content depends on timing-sensitive bypass decisions, but
            # its traffic counts do not.
            raise ValueError(f"{name} needs a RefLruCache")
        if llc is None and schedule is None and dram_cache is not None:
            raise ValueError(
                f"{name} below a DRAM cache needs a drain schedule: its "
                f"bypass fetches are timing-dependent and order-sensitive"
            )
        self.read_requests = 0
        self.writeback_requests = 0
        self.writebacks = 0
        self.op_index = -1
        self.schedule_failures: List[str] = []
        self._background = deque()
        self._rows_in_flight: Set[int] = set()

    def begin_op(self, op_index: int) -> None:
        """Align with the witness: called before each trace record."""
        self.op_index = op_index

    # ------------------------------------------------------ memory access
    # With a RefDramCache attached, every fetch and writeback the mechanism
    # would send to "memory" routes through the level instead — exactly the
    # plumbing System applies when config.dram_cache is set.

    def _memory_fetch(self, addr: int) -> None:
        if self.schedule is not None:
            recorded = self.schedule.take_fetch(self.op_index)
            if recorded != addr:
                self.schedule_failures.append(
                    f"op {self.op_index}: oracle fetches {addr:#x} but the "
                    f"timing run recorded "
                    + (f"{recorded:#x}" if recorded is not None else "no fetch")
                )
        if self.dram_cache is not None:
            self.dram_cache.read(addr)

    def _memory_write(self, addr: int) -> None:
        self.writebacks += 1
        if self.dram_cache is not None:
            self.dram_cache.write(addr)

    # ----------------------------------------------------------- requests

    def read(self, addr: int) -> None:
        self.read_requests += 1
        if self.llc is None:
            # Unmodelled LLC (skipcache): whether this read bypassed, hit or
            # missed is timing-dependent, so replay whatever fetches the
            # witness recorded for the op straight into the level below.
            if self.schedule is not None:
                for fetched in self.schedule.take_fetches(self.op_index):
                    if self.dram_cache is not None:
                        self.dram_cache.read(fetched)
            return
        if self.llc.lookup(addr):
            # CLB's bypassed-but-resident path: the timing side skipped the
            # tag lookup, fetched from memory anyway, and the fill merged
            # into the already-present block. Content-neutral up here, but
            # the fetch is real traffic below — replay it when recorded.
            if (
                self.schedule is not None
                and self.schedule.peek_fetch(self.op_index) == addr
            ):
                self.schedule.take_fetch(self.op_index)
                if self.dram_cache is not None:
                    self.dram_cache.read(addr)
            return
        self._memory_fetch(addr)
        evicted = self.llc.insert(addr, dirty=False)
        if evicted is not None:
            self._handle_eviction(*evicted)

    def writeback(self, addr: int) -> None:
        """Demand writeback request; executes immediately (DEMAND > BG)."""
        self.writeback_requests += 1
        if self.kind == "writethrough":
            # Every writeback request becomes exactly one memory write,
            # independent of LLC content.
            self._memory_write(addr)
            return
        if self.llc.contains(addr):
            self.llc.touch(addr)
            self._mark_dirty(addr)
            return
        if self.kind == "dbi":
            # The block enters the tag store clean; the DBI records dirtiness
            # after the displaced block is processed.
            evicted = self.llc.insert(addr, dirty=False)
            if evicted is not None:
                self._handle_eviction(*evicted)
            self._mark_dirty(addr)
        else:
            evicted = self.llc.insert(addr, dirty=True)
            if evicted is not None:
                self._handle_eviction(*evicted)

    # -------------------------------------------------------- dirty paths

    def _mark_dirty(self, addr: int) -> None:
        if self.kind == "dbi":
            for block in self.dbi.mark_dirty(addr):
                # DBI entry eviction: the blocks stay cached, now clean, and
                # each gets a background writeback probe.
                self._background.append(("write", block))
        else:
            self.llc.mark_dirty(addr)

    def _handle_eviction(self, addr: int, tag_dirty: bool) -> None:
        if self.kind == "dbi":
            if self.dbi.is_dirty(addr):
                self.dbi.mark_clean(addr)
                self._memory_write(addr)
                if self.enable_awb:
                    for other in self.dbi.dirty_in_region(addr):
                        # Cleared eagerly, exactly like the timing AWB.
                        self.dbi.mark_clean(other)
                        self._background.append(("write", other))
            return
        if not tag_dirty:
            return
        self._memory_write(addr)
        if self.kind == "dawb":
            self._dawb_round(addr)
        elif self.kind == "vwq":
            self._vwq_round(addr)

    # ------------------------------------------------- row-probing rounds

    def _row_span(self, addr: int) -> List[int]:
        base = (addr // self.row_blocks) * self.row_blocks
        return [a for a in range(base, base + self.row_blocks) if a != addr]

    def _dawb_round(self, addr: int) -> None:
        row = addr // self.row_blocks
        if row in self._rows_in_flight:
            return
        self._rows_in_flight.add(row)
        span = self._row_span(addr)
        for index, other in enumerate(span):
            self._background.append(
                ("dawb_probe", other, row, index == len(span) - 1)
            )

    def _vwq_round(self, addr: int) -> None:
        row = addr // self.row_blocks
        if row in self._rows_in_flight:
            return
        probes = []
        for other in self._row_span(addr):
            set_idx = self.llc.set_index(other)
            ssv = any(
                self.llc.is_dirty(block)
                for block in self.llc.lru_valid_half(set_idx)
            )
            if ssv:
                probes.append(other)
        if not probes:
            return
        self._rows_in_flight.add(row)
        for index, other in enumerate(probes):
            self._background.append(
                ("vwq_probe", other, row, index == len(probes) - 1)
            )

    # ----------------------------------------------------------- draining

    def drain_background(self) -> None:
        """Run queued background work to completion (end of each op).

        The oracle decides *which* blocks get written back — probe hits,
        AWB flushes, DBI drains — by evaluating the queue in FIFO order
        against its own LLC state. Without a schedule the writes also go
        downstream in that order (the serialized timing contract). With a
        schedule, the decisions are checked exactly-once against the
        witness's per-op multiset and then emitted in the *recorded* order,
        so the DRAM-cache level below sees the timing run's traffic order.
        """
        intended: List[int] = []
        while self._background:
            item = self._background.popleft()
            op = item[0]
            if op == "write":
                intended.append(item[1])
            elif op == "dawb_probe":
                _, other, row, last = item
                if self.llc.is_dirty(other):
                    self.llc.mark_clean(other)
                    intended.append(other)
                if last:
                    self._rows_in_flight.discard(row)
            elif op == "vwq_probe":
                _, other, row, last = item
                in_lru_half = other in self.llc.lru_valid_half(
                    self.llc.set_index(other)
                )
                if in_lru_half and self.llc.is_dirty(other):
                    self.llc.mark_clean(other)
                    intended.append(other)
                if last:
                    self._rows_in_flight.discard(row)
        emit = intended
        if self.schedule is not None:
            recorded = self.schedule.background_for_op(self.op_index)
            if Counter(recorded) == Counter(intended):
                emit = recorded
            else:
                self.schedule_failures.append(
                    f"op {self.op_index}: oracle drains "
                    f"{['%#x' % a for a in intended]} but the timing run "
                    f"retired {['%#x' % a for a in recorded]}"
                )
        for addr in emit:
            self._memory_write(addr)


class OracleSystem:
    """Untimed L1/L2/LLC hierarchy replaying one interleaved trace.

    ``mechanism=None`` models only the private levels; skipcache instead
    uses an :class:`OracleMechanism` with ``llc=None`` so traffic counts
    stay exact while its timing-dependent LLC content goes unmodelled.
    """

    def __init__(
        self,
        num_cores: int,
        l1_geometry: Tuple[int, int],
        l2_geometry: Tuple[int, int],
        mechanism: Optional[OracleMechanism],
    ) -> None:
        self.l1s = [RefLruCache(*l1_geometry) for _ in range(num_cores)]
        self.l2s = [RefLruCache(*l2_geometry) for _ in range(num_cores)]
        self.mechanism = mechanism
        self._op_index = -1

    def access(self, core_id: int, is_write: bool, addr: int) -> None:
        self._op_index += 1
        if self.mechanism is not None:
            self.mechanism.begin_op(self._op_index)
        if is_write:
            self._store(core_id, addr)
        else:
            self._load(core_id, addr)
        if self.mechanism is not None:
            self.mechanism.drain_background()

    def _load(self, core_id: int, addr: int) -> None:
        if self.l1s[core_id].lookup(addr):
            return
        self._miss_to_l2(core_id, addr, store=False)

    def _store(self, core_id: int, addr: int) -> None:
        l1 = self.l1s[core_id]
        if l1.lookup(addr):
            l1.mark_dirty(addr)
            return
        self._miss_to_l2(core_id, addr, store=True)

    def _miss_to_l2(self, core_id: int, addr: int, store: bool) -> None:
        l2 = self.l2s[core_id]
        if not l2.lookup(addr):
            if self.mechanism is not None:
                self.mechanism.read(addr)
            self._fill_l2(core_id, addr)
        self._fill_l1(core_id, addr, store)

    def _fill_l2(self, core_id: int, addr: int) -> None:
        evicted = self.l2s[core_id].insert(addr, dirty=False)
        if evicted is not None and evicted[1] and self.mechanism is not None:
            self.mechanism.writeback(evicted[0])

    def _fill_l1(self, core_id: int, addr: int, store: bool) -> None:
        evicted = self.l1s[core_id].insert(addr, dirty=False)
        if evicted is not None and evicted[1]:
            self._writeback_to_l2(core_id, evicted[0])
        if store:
            self.l1s[core_id].mark_dirty(addr)

    def schedule_failures(self) -> List[str]:
        """Witness disagreements after a full replay (empty = conforming)."""
        if self.mechanism is None:
            return []
        failures = list(self.mechanism.schedule_failures)
        if self.mechanism.schedule is not None:
            failures.extend(self.mechanism.schedule.leftovers())
        return failures

    def _writeback_to_l2(self, core_id: int, addr: int) -> None:
        l2 = self.l2s[core_id]
        if l2.contains(addr):
            l2.mark_dirty(addr)
            l2.touch(addr)
            return
        evicted = l2.insert(addr, dirty=True)
        if evicted is not None and evicted[1] and self.mechanism is not None:
            self.mechanism.writeback(evicted[0])
