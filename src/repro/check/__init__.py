"""Checked-mode invariant engine and differential validation harness.

Three layers (ISSUE: checked-mode tentpole):

* :mod:`repro.check.invariants` / :mod:`repro.check.ledger` /
  :mod:`repro.check.engine` — runtime invariant checking behind the
  ``--check {off,cheap,full}`` flag;
* :mod:`repro.check.oracle` — the untimed golden reference model;
* :mod:`repro.check.differential` — ``repro check-diff``, asserting the
  timing simulator and the oracle agree architecturally for every mechanism.
"""

from repro.check.differential import (
    DiffGeometry,
    DiffReport,
    MechanismReport,
    assert_check_diff,
    run_check_diff,
)
from repro.check.engine import CheckEngine, CheckLevel
from repro.check.errors import InvariantViolation
from repro.check.invariants import INVARIANTS, invariant_names
from repro.check.ledger import WritebackLedger
from repro.check.oracle import OracleMechanism, OracleSystem, RefDbi, RefLruCache

__all__ = [
    "CheckEngine",
    "CheckLevel",
    "DiffGeometry",
    "DiffReport",
    "INVARIANTS",
    "InvariantViolation",
    "MechanismReport",
    "OracleMechanism",
    "OracleSystem",
    "RefDbi",
    "RefLruCache",
    "WritebackLedger",
    "assert_check_diff",
    "invariant_names",
    "run_check_diff",
]
