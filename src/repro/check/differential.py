"""Differential oracle: timing simulator vs. golden reference model.

``repro check-diff`` drives the *real* LLC-mechanism/hierarchy/DRAM stack one
trace record at a time (issue, drain the event queue, next), which removes
every source of timing-dependent reordering — MSHR merges, overlapping fills,
core overshoot — while exercising the exact production datapaths. The same
interleaved reference stream replays through the untimed
:class:`~repro.check.oracle.OracleSystem`, and the two must agree on:

* L1/L2 contents and dirty sets per core (every mechanism);
* LLC contents (every mechanism except skipcache, whose bypass-without-fill
  decisions are predictor/timing state the oracle does not model);
* the dirty set — in-tag bits for conventional mechanisms, DBI entry
  bit-vectors for the DBI family;
* total writeback traffic: mechanism writebacks, and DRAM writes performed
  plus coalesced.

The timed side additionally records an op-relative
:class:`~repro.check.schedule.DrainSchedule` — which background writebacks
retired within each op, and which memory fetches timing-dependent bypasses
issued — and the oracle replays against it (oracle v2): the oracle decides
*what* is written back, the witness pins *when*, and any disagreement is a
reported divergence. This is what makes every mechanism family checkable,
including below a DRAM-cache level whose LRU state is order-sensitive.

Replacement is pinned to LRU on both sides (TA-DIP's coin flips are
exercised by the timing tests); all other datapaths run unmodified,
including CLB bypasses and predictor training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.port import TagPort
from repro.check.errors import InvariantViolation
from repro.check.invariants import (
    check_cache_structure,
    check_dbi_structure,
    check_dbi_tag_agreement,
    check_policy_recency,
    check_write_buffer,
)
from repro.check.oracle import (
    OracleMechanism,
    OracleSystem,
    RefDbi,
    RefDramCache,
    RefLruCache,
)
from repro.check.schedule import DrainRecorder, DrainSchedule
from repro.core.config import DbiConfig
from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dramcache.config import DramCacheConfig, stacked_dram_config
from repro.dramcache.level import DramCacheLevel
from repro.mechanisms.registry import MECHANISM_NAMES, make_mechanism
from repro.sim.hierarchy import Hierarchy
from repro.sim.trace import Trace
from repro.utils.events import EventQueue
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class DiffGeometry:
    """Small machine shape shared by both sides of the differential run."""

    llc_blocks: int = 256
    llc_associativity: int = 4
    l1_blocks: int = 16
    l1_associativity: int = 2
    l2_blocks: int = 64
    l2_associativity: int = 4
    dbi_alpha: Fraction = Fraction(1, 2)
    dbi_granularity: int = 8
    dbi_associativity: int = 2
    dram_row_blocks: int = 16
    dram_banks: int = 4
    write_buffer_entries: int = 8
    #: Short predictor epochs so CLB/skipcache bypasses actually trigger.
    predictor_epoch_cycles: int = 5_000
    #: DRAM-cache level shape (used only when a backend is requested).
    #: Small and low-associativity so evictions and DBI displacements fire
    #: constantly at differential trace lengths.
    dramcache_blocks: int = 64
    dramcache_associativity: int = 4
    dramcache_dbi_alpha: Fraction = Fraction(1, 2)
    dramcache_dbi_granularity: int = 8
    dramcache_dbi_associativity: int = 2

    def llc_config(self) -> CacheConfig:
        return CacheConfig(
            name="llc",
            num_blocks=self.llc_blocks,
            associativity=self.llc_associativity,
            tag_latency=4,
            data_latency=8,
            serial_lookup=True,
            replacement="lru",
        )

    def l1_config(self) -> CacheConfig:
        return CacheConfig(
            name="l1",
            num_blocks=self.l1_blocks,
            associativity=self.l1_associativity,
            tag_latency=1,
            data_latency=1,
        )

    def l2_config(self) -> CacheConfig:
        return CacheConfig(
            name="l2",
            num_blocks=self.l2_blocks,
            associativity=self.l2_associativity,
            tag_latency=2,
            data_latency=2,
        )

    def dram_config(self) -> DramConfig:
        return DramConfig(
            num_banks=self.dram_banks,
            row_buffer_blocks=self.dram_row_blocks,
            write_buffer_entries=self.write_buffer_entries,
        )

    def dbi_config(self) -> DbiConfig:
        return DbiConfig(
            cache_blocks=self.llc_blocks,
            alpha=self.dbi_alpha,
            granularity=self.dbi_granularity,
            associativity=self.dbi_associativity,
        )

    def dram_cache_config(self, dirty_backend: str) -> DramCacheConfig:
        return DramCacheConfig(
            num_blocks=self.dramcache_blocks,
            associativity=self.dramcache_associativity,
            dirty_backend=dirty_backend,
            dbi_alpha=self.dramcache_dbi_alpha,
            dbi_granularity=self.dramcache_dbi_granularity,
            dbi_associativity=self.dramcache_dbi_associativity,
            stacked=stacked_dram_config(
                row_buffer_blocks=self.dram_row_blocks,
                write_buffer_entries=self.write_buffer_entries,
            ),
        )


def _interleave(traces: Sequence[Trace]) -> Iterable[Tuple[int, bool, int]]:
    """Round-robin merge of per-core reference streams: (core, write, addr)."""
    streams = [trace.records for trace in traces]
    for index in range(max(len(records) for records in streams)):
        for core_id, records in enumerate(streams):
            if index < len(records):
                _gap, is_write, addr = records[index]
                yield core_id, is_write, addr


@dataclass
class TimingSnapshot:
    """Architectural state of the timing stack after a serialized run."""

    llc_blocks: Set[int]
    llc_dirty: Set[int]
    dbi_dirty: Set[int]
    dbi_entries: Dict[int, int]
    l1_blocks: List[Set[int]]
    l1_dirty: List[Set[int]]
    l2_blocks: List[Set[int]]
    l2_dirty: List[Set[int]]
    read_requests: int
    writeback_requests: int
    memory_writebacks: int
    dram_writes_performed: int
    dram_writes_coalesced: int
    # DRAM-cache level state (populated only when a level is attached).
    dramcache_blocks: Set[int] = field(default_factory=set)
    dramcache_dirty: Set[int] = field(default_factory=set)
    dramcache_dbi_entries: Dict[int, int] = field(default_factory=dict)
    dramcache_reads: int = 0
    dramcache_writes: int = 0
    dramcache_offchip_writes: int = 0


def _cache_sets(cache: Cache) -> Tuple[Set[int], Set[int]]:
    blocks, dirty = set(), set()
    for block in cache.iter_valid_blocks():
        blocks.add(block.addr)
        if block.dirty:
            dirty.add(block.addr)
    return blocks, dirty


def run_timing_serialized(
    mechanism_name: str,
    traces: Sequence[Trace],
    geometry: DiffGeometry,
    dram_cache: Optional[str] = None,
    recorder: Optional[DrainRecorder] = None,
) -> TimingSnapshot:
    """Drive the real stack one reference at a time and snapshot its state.

    With a ``recorder`` attached, the mechanism logs every memory writeback
    (with cause) and fetch per op — the drain schedule the oracle replays.
    """
    queue = EventQueue()
    memory = MemoryController(queue, geometry.dram_config())
    level = None
    if dram_cache is not None:
        level = DramCacheLevel(
            queue,
            geometry.dram_cache_config(dram_cache),
            memory,
            rng=DeterministicRng(0xD3A),
        )
    llc = Cache(geometry.llc_config(), num_threads=len(traces))
    port = TagPort(queue, occupancy=geometry.llc_config().port_occupancy)
    mechanism = make_mechanism(
        mechanism_name,
        queue=queue,
        llc=llc,
        port=port,
        memory=level or memory,
        mapper=memory.mapper,
        num_cores=len(traces),
        dbi_config=geometry.dbi_config(),
        predictor_epoch_cycles=geometry.predictor_epoch_cycles,
        rng=DeterministicRng(0xD1FF),
    )
    hierarchy = Hierarchy(
        queue, len(traces), geometry.l1_config(), geometry.l2_config(), mechanism
    )
    if recorder is not None:
        mechanism.recorder = recorder

    for op_index, (core_id, is_write, addr) in enumerate(_interleave(traces)):
        if recorder is not None:
            recorder.begin_op(op_index)
        if is_write:
            hierarchy.store(core_id, addr)
        else:
            hierarchy.load(core_id, addr, lambda _addr: None)
        queue.run()

    if not (hierarchy.is_idle() and memory.is_idle()):
        raise InvariantViolation(
            "writeback-conservation",
            f"{mechanism_name}: serialized run left in-flight work after the "
            f"event queue drained",
        )
    if level is not None and not level.is_idle():
        raise InvariantViolation(
            "writeback-conservation",
            f"{mechanism_name}: serialized run left DRAM-cache work in flight "
            f"after the event queue drained",
        )
    # The production structural checks must hold on the final state too.
    mechanism.check_invariants()
    check_cache_structure(llc)
    check_policy_recency(llc.policy, "llc")
    check_dbi_tag_agreement(mechanism, llc)
    check_write_buffer(memory.write_buffer)
    dbi = getattr(mechanism, "dbi", None)
    if dbi is not None:
        check_dbi_structure(dbi)
    if level is not None:
        level.check_invariants()
        check_cache_structure(level.tags, "dramcache")
        if level.dbi is not None:
            check_dbi_structure(level.dbi)

    llc_blocks, llc_dirty = _cache_sets(llc)
    l1_states = [_cache_sets(cache) for cache in hierarchy.l1s]
    l2_states = [_cache_sets(cache) for cache in hierarchy.l2s]
    dbi_entries: Dict[int, int] = {}
    if dbi is not None:
        dbi_entries = {
            entry.region_id: entry.bitvector
            for entry in dbi.iter_valid_entries()
        }
    dramcache_blocks: Set[int] = set()
    dramcache_dirty: Set[int] = set()
    dramcache_dbi_entries: Dict[int, int] = {}
    dramcache_reads = dramcache_writes = dramcache_offchip = 0
    if level is not None:
        dramcache_blocks, _tag_dirty = _cache_sets(level.tags)
        dramcache_dirty = set(level.dirty_blocks())
        if level.dbi is not None:
            dramcache_dbi_entries = {
                entry.region_id: entry.bitvector
                for entry in level.dbi.iter_valid_entries()
            }
        level_counter = level.stats.counter
        dramcache_reads = level_counter("reads").value
        dramcache_writes = level_counter("writes").value
        dramcache_offchip = level_counter("offchip_writes").value

    counter = mechanism.stats.counter
    dram_counter = memory.stats.counter
    return TimingSnapshot(
        llc_blocks=llc_blocks,
        llc_dirty=llc_dirty,
        dbi_dirty=set(dbi.all_dirty_blocks()) if dbi is not None else set(),
        dbi_entries=dbi_entries,
        l1_blocks=[state[0] for state in l1_states],
        l1_dirty=[state[1] for state in l1_states],
        l2_blocks=[state[0] for state in l2_states],
        l2_dirty=[state[1] for state in l2_states],
        read_requests=counter("read_requests").value,
        writeback_requests=counter("writeback_requests").value,
        memory_writebacks=counter("memory_writebacks").value,
        dram_writes_performed=dram_counter("dram_writes_performed").value,
        dram_writes_coalesced=dram_counter("writes_coalesced").value,
        dramcache_blocks=dramcache_blocks,
        dramcache_dirty=dramcache_dirty,
        dramcache_dbi_entries=dramcache_dbi_entries,
        dramcache_reads=dramcache_reads,
        dramcache_writes=dramcache_writes,
        dramcache_offchip_writes=dramcache_offchip,
    )


def run_oracle(
    mechanism_name: str,
    traces: Sequence[Trace],
    geometry: DiffGeometry,
    dram_cache: Optional[str] = None,
    schedule: Optional[DrainSchedule] = None,
) -> OracleSystem:
    """Replay the same interleaved stream through the reference model."""
    if mechanism_name == "skipcache":
        llc = None
        dbi = None
    else:
        llc = RefLruCache(geometry.llc_blocks, geometry.llc_associativity)
        dbi = None
        if mechanism_name.startswith("dbi"):
            dbi_config = geometry.dbi_config()
            dbi = RefDbi(
                dbi_config.num_entries,
                dbi_config.associativity,
                dbi_config.granularity,
            )
    ref_level = None
    if dram_cache is not None:
        level_config = geometry.dram_cache_config(dram_cache)
        level_dbi = level_config.dbi_config()
        ref_level = RefDramCache(
            level_config.num_blocks,
            level_config.associativity,
            backend=dram_cache,
            dbi_entries=level_dbi.num_entries,
            dbi_associativity=level_dbi.associativity,
            dbi_granularity=level_dbi.granularity,
        )
    mechanism = OracleMechanism(
        mechanism_name, llc, geometry.dram_row_blocks, dbi=dbi,
        dram_cache=ref_level, schedule=schedule,
    )
    oracle = OracleSystem(
        len(traces),
        (geometry.l1_blocks, geometry.l1_associativity),
        (geometry.l2_blocks, geometry.l2_associativity),
        mechanism,
    )
    for core_id, is_write, addr in _interleave(traces):
        oracle.access(core_id, is_write, addr)
    return oracle


@dataclass
class MechanismReport:
    """Agreement verdict for one mechanism."""

    mechanism: str
    failures: List[str] = field(default_factory=list)
    llc_blocks: int = 0
    dirty_blocks: int = 0
    writebacks: int = 0
    read_requests: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class DiffReport:
    """Full differential-validation outcome over a set of mechanisms."""

    trace_names: List[str]
    references: int
    reports: List[MechanismReport]
    dram_cache: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    def to_text(self) -> str:
        level_note = (
            f" + DRAM-cache level ({self.dram_cache} backend)"
            if self.dram_cache
            else ""
        )
        lines = [
            f"differential validation: traces={','.join(self.trace_names)} "
            f"({self.references} refs interleaved){level_note}",
            f"{'mechanism':<14} {'llc blocks':>10} {'dirty':>7} "
            f"{'writebacks':>10} {'reads':>8}  verdict",
        ]
        for report in self.reports:
            verdict = "OK" if report.ok else "DIVERGED"
            lines.append(
                f"{report.mechanism:<14} {report.llc_blocks:>10} "
                f"{report.dirty_blocks:>7} {report.writebacks:>10} "
                f"{report.read_requests:>8}  {verdict}"
            )
            for failure in report.failures:
                lines.append(f"    - {failure}")
        return "\n".join(lines)


def _compare_sets(
    failures: List[str], label: str, actual: Set[int], expected: Set[int]
) -> None:
    if actual == expected:
        return
    extra = sorted(actual - expected)[:4]
    missing = sorted(expected - actual)[:4]
    failures.append(
        f"{label}: timing has {len(actual)}, oracle has {len(expected)} "
        f"(timing-only={['%#x' % a for a in extra]}, "
        f"oracle-only={['%#x' % a for a in missing]})"
    )


def _compare_counts(
    failures: List[str], label: str, actual: int, expected: int
) -> None:
    if actual != expected:
        failures.append(f"{label}: timing={actual}, oracle={expected}")


def diff_one_mechanism(
    mechanism_name: str,
    traces: Sequence[Trace],
    geometry: DiffGeometry,
    dram_cache: Optional[str] = None,
    recorder: Optional[DrainRecorder] = None,
) -> Tuple[MechanismReport, TimingSnapshot]:
    """Run both sides for one mechanism and compare architectural state.

    A caller-supplied ``recorder`` keeps its witness log after the run —
    ``repro conformance`` mines it for coverage (causes, interleavings).
    """
    report = MechanismReport(mechanism=mechanism_name)
    recorder = recorder if recorder is not None else DrainRecorder()
    try:
        snapshot = run_timing_serialized(
            mechanism_name, traces, geometry, dram_cache=dram_cache,
            recorder=recorder,
        )
    except AssertionError as error:
        report.failures.append(f"timing-side invariant failure: {error}")
        empty = TimingSnapshot(
            set(), set(), set(), {}, [], [], [], [], 0, 0, 0, 0, 0
        )
        return report, empty
    oracle = run_oracle(
        mechanism_name, traces, geometry, dram_cache=dram_cache,
        schedule=recorder.schedule(),
    )
    reference = oracle.mechanism

    failures = report.failures
    failures.extend(oracle.schedule_failures())
    for core_id in range(len(traces)):
        _compare_sets(
            failures, f"core{core_id} L1 contents",
            snapshot.l1_blocks[core_id], oracle.l1s[core_id].blocks(),
        )
        _compare_sets(
            failures, f"core{core_id} L1 dirty set",
            snapshot.l1_dirty[core_id], oracle.l1s[core_id].dirty_blocks(),
        )
        _compare_sets(
            failures, f"core{core_id} L2 contents",
            snapshot.l2_blocks[core_id], oracle.l2s[core_id].blocks(),
        )
        _compare_sets(
            failures, f"core{core_id} L2 dirty set",
            snapshot.l2_dirty[core_id], oracle.l2s[core_id].dirty_blocks(),
        )

    if reference.llc is not None:
        _compare_sets(
            failures, "LLC contents", snapshot.llc_blocks, reference.llc.blocks()
        )

    if reference.dbi is not None:
        _compare_sets(
            failures, "dirty set (DBI)",
            snapshot.dbi_dirty, reference.dbi.dirty_blocks(),
        )
        if snapshot.dbi_entries != reference.dbi.entries():
            failures.append(
                f"DBI entries diverge: timing has {len(snapshot.dbi_entries)} "
                f"regions, oracle has {len(reference.dbi.entries())}"
            )
        dirty_count = len(snapshot.dbi_dirty)
    elif reference.kind == "writethrough":
        _compare_counts(
            failures, "write-through dirty set", len(snapshot.llc_dirty), 0
        )
        dirty_count = 0
    else:
        _compare_sets(
            failures, "dirty set (tags)",
            snapshot.llc_dirty, reference.llc.dirty_blocks(),
        )
        dirty_count = len(snapshot.llc_dirty)

    _compare_counts(
        failures, "LLC read requests",
        snapshot.read_requests, reference.read_requests,
    )
    _compare_counts(
        failures, "writeback requests",
        snapshot.writeback_requests, reference.writeback_requests,
    )
    _compare_counts(
        failures, "memory writebacks",
        snapshot.memory_writebacks, reference.writebacks,
    )
    if reference.dram_cache is not None:
        ref_level = reference.dram_cache
        _compare_sets(
            failures, "DRAM-cache contents",
            snapshot.dramcache_blocks, ref_level.blocks(),
        )
        _compare_sets(
            failures, "DRAM-cache dirty set",
            snapshot.dramcache_dirty, ref_level.dirty_blocks(),
        )
        if snapshot.dramcache_dbi_entries != ref_level.dbi_entries():
            failures.append(
                f"DRAM-cache DBI entries diverge: timing has "
                f"{len(snapshot.dramcache_dbi_entries)} regions, oracle has "
                f"{len(ref_level.dbi_entries())}"
            )
        _compare_counts(
            failures, "DRAM-cache reads",
            snapshot.dramcache_reads, ref_level.received_reads,
        )
        _compare_counts(
            failures, "DRAM-cache writes",
            snapshot.dramcache_writes, ref_level.received_writes,
        )
        _compare_counts(
            failures, "DRAM-cache off-chip writes",
            snapshot.dramcache_offchip_writes, ref_level.offchip_writes,
        )
        # With a level attached, off-chip DRAM sees the *level's* write
        # stream rather than the mechanism's.
        _compare_counts(
            failures, "DRAM writes (performed+coalesced)",
            snapshot.dram_writes_performed + snapshot.dram_writes_coalesced,
            ref_level.offchip_writes,
        )
    else:
        _compare_counts(
            failures, "DRAM writes (performed+coalesced)",
            snapshot.dram_writes_performed + snapshot.dram_writes_coalesced,
            reference.writebacks,
        )

    report.llc_blocks = len(snapshot.llc_blocks)
    report.dirty_blocks = dirty_count
    report.writebacks = snapshot.memory_writebacks
    report.read_requests = snapshot.read_requests
    return report, snapshot


def run_check_diff(
    traces: Sequence[Trace],
    mechanisms: Optional[Sequence[str]] = None,
    geometry: Optional[DiffGeometry] = None,
    dram_cache: Optional[str] = None,
) -> DiffReport:
    """Differentially validate mechanisms against the golden model.

    Beyond per-mechanism agreement with the oracle, all LLC-modelled
    mechanisms must agree with *each other* on final LLC contents: dirty-bit
    placement and proactive writebacks may only change traffic, never
    architectural content (the paper's safety argument).

    With ``dram_cache`` set to a dirty-backend name ("tag" or "dbi"), every
    run carries a die-stacked DRAM-cache level between the mechanism and
    off-chip DRAM, and the level's contents, dirty set, DBI entries and
    off-chip write traffic must also match the untimed reference. Every
    mechanism family is eligible in both modes: the recorded drain schedule
    gives the oracle the op-relative retire order of background writebacks
    and timing-dependent bypass fetches (see :mod:`repro.check.schedule`).
    """
    mechanisms = list(mechanisms or MECHANISM_NAMES)
    geometry = geometry or DiffGeometry()
    reports: List[MechanismReport] = []
    content_sets: Dict[str, Set[int]] = {}
    for name in mechanisms:
        report, snapshot = diff_one_mechanism(
            name, traces, geometry, dram_cache=dram_cache
        )
        if name != "skipcache":
            content_sets[name] = snapshot.llc_blocks
        reports.append(report)

    if len(content_sets) > 1:
        names = sorted(content_sets)
        baseline_name = names[0]
        baseline = content_sets[baseline_name]
        for name in names[1:]:
            if content_sets[name] != baseline:
                for report in reports:
                    if report.mechanism == name:
                        _compare_sets(
                            report.failures,
                            f"cross-mechanism LLC contents vs {baseline_name}",
                            content_sets[name],
                            baseline,
                        )
    return DiffReport(
        trace_names=[trace.name for trace in traces],
        references=sum(len(trace) for trace in traces),
        reports=reports,
        dram_cache=dram_cache,
    )


def assert_check_diff(
    traces: Sequence[Trace],
    mechanisms: Optional[Sequence[str]] = None,
    geometry: Optional[DiffGeometry] = None,
    dram_cache: Optional[str] = None,
) -> DiffReport:
    """:func:`run_check_diff` that raises on any divergence (test helper)."""
    report = run_check_diff(
        traces, mechanisms=mechanisms, geometry=geometry, dram_cache=dram_cache
    )
    if not report.ok:
        raise InvariantViolation("differential-oracle", "\n" + report.to_text())
    return report
