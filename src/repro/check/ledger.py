"""Writeback-conservation ledger (full-check mode).

Tracks every dirty-bit transition the simulator performs and enforces the
conservation law from the paper's correctness argument: *every block that
becomes dirty is eventually written back exactly once* (or explicitly
discarded by an invalidation), and *no block is ever written back without a
preceding dirty→clean transition*.

The ledger is architectural, not statistical: it is driven by observer
callbacks at the exact points where the tag store or the DBI flips a dirty
bit, so it is independent of the stats counters (which reset at warmup).

Write-through mechanisms (skipcache) are exempt from the pending-writeback
accounting: they send a memory write per writeback *request* and never hold
dirty state, so only the "never dirty" half of the law applies to them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.check.errors import InvariantViolation

_NAME = "writeback-conservation"


def _fail(detail: str) -> None:
    raise InvariantViolation(_NAME, detail)


class WritebackLedger:
    """Exactly-once dirty/writeback accounting for one LLC-level store."""

    def __init__(self, write_through: bool = False) -> None:
        self.write_through = write_through
        self.dirty: Set[int] = set()
        #: blocks cleaned whose memory write has not yet been observed,
        #: mapped to the number of writebacks still owed.
        self.pending: Dict[int, int] = {}
        self.dirtied = 0
        self.cleaned = 0
        self.discarded = 0
        self.writebacks = 0
        #: writeback cause -> count (see repro.check.schedule.WRITEBACK_CAUSES);
        #: a coverage surface for `repro conformance`, not a checked quantity.
        self.causes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Observer callbacks (see CheckEngine for the wiring).

    def on_block_dirtied(self, addr: int) -> None:
        if addr in self.dirty:
            _fail(f"block {addr:#x} dirtied twice without an intervening clean")
        self.dirty.add(addr)
        self.dirtied += 1

    def on_block_cleaned(self, addr: int) -> None:
        """A dirty bit was cleared on the way to a memory writeback."""
        if addr not in self.dirty:
            _fail(f"block {addr:#x} cleaned but was never marked dirty")
        self.dirty.discard(addr)
        self.cleaned += 1
        self.pending[addr] = self.pending.get(addr, 0) + 1

    def on_dirty_discarded(self, addr: int) -> None:
        """A dirty block was invalidated without a writeback (explicit drop)."""
        if addr not in self.dirty:
            _fail(f"block {addr:#x} discarded-dirty but was never marked dirty")
        self.dirty.discard(addr)
        self.discarded += 1

    def on_memory_writeback(self, addr: int, cause: str = "evict") -> None:
        self.writebacks += 1
        self.causes[cause] = self.causes.get(cause, 0) + 1
        if self.write_through:
            return
        owed = self.pending.get(addr, 0)
        if owed <= 0:
            _fail(
                f"block {addr:#x} written back to memory without a preceding "
                f"dirty→clean transition (lost or duplicated writeback)"
            )
        if owed == 1:
            del self.pending[addr]
        else:
            self.pending[addr] = owed - 1

    # ------------------------------------------------------------------
    # Assertions.

    @property
    def outstanding_writebacks(self) -> int:
        return sum(self.pending.values())

    def assert_agrees(self, actual_dirty: Iterable[int], where: str) -> None:
        """The ledger's dirty set must equal the machine's dirty set."""
        actual = set(actual_dirty)
        if actual == self.dirty:
            return
        ghost = sorted(self.dirty - actual)[:8]
        missed = sorted(actual - self.dirty)[:8]
        _fail(
            f"dirty-set divergence at {where}: ledger has "
            f"{len(self.dirty)} dirty blocks, machine has {len(actual)}; "
            f"ledger-only={['%#x' % a for a in ghost]} "
            f"machine-only={['%#x' % a for a in missed]}"
        )

    def assert_quiescent(self) -> None:
        """At end of simulation every cleaned block must have been written."""
        if self.write_through:
            return
        if self.pending:
            sample = sorted(self.pending)[:8]
            _fail(
                f"{self.outstanding_writebacks} writeback(s) owed at end of "
                f"simulation, e.g. blocks {['%#x' % a for a in sample]} — "
                f"dirty data was cleaned but never reached memory"
            )
