"""Coverage-guided conformance campaign over the whole checked surface.

``repro conformance`` sweeps configuration space — mechanism × geometry ×
DRAM-cache backend × check level — and op-schedule space (seeded generator
families with distinct access shapes), running two legs per trial:

* the **differential leg**: the serialized timing stack vs. the oracle-v2
  replay (:func:`repro.check.differential.diff_one_mechanism`), which
  witnesses drain ordering and bypass fetches op by op;
* the **engine leg**: a normally-timed :class:`repro.sim.system.System`
  carrying the invariant engine at the trial's check level, so MSHR merges,
  overlapping fills and core overshoot — everything serialization removes —
  run under the 9-invariant sweep and the writeback ledger.

The campaign tracks a structural **coverage map**: which invariants actually
exercised state, which writeback causes appeared, which drain-interleaving
shapes the schedules hit, and which config corners ran. New coverage feeds
back into generation — generator families and mechanisms that recently
uncovered new keys are weighted up (greybox-style energy), so the campaign
spends its trial budget where the state space is still opening.

Every trial is derived from one campaign seed, so a run is exactly
reproducible and its coverage map is byte-stable. A failing trial is
shrunk — per-core record lists are ddmin-reduced while the failure still
reproduces — and written to ``results/conformance/`` as a replayable repro
script (``repro conformance --replay <file>``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.differential import (
    DiffGeometry,
    DrainRecorder,
    diff_one_mechanism,
)
from repro.check.errors import InvariantViolation
from repro.mechanisms.registry import MECHANISM_NAMES
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng

#: Campaign-selectable machine shapes. Small and collision-prone on purpose:
#: the differential needs evictions, displacements and drains to fire at
#: hundreds-of-refs trace lengths, not millions.
GEOMETRIES: Dict[str, DiffGeometry] = {
    "default": DiffGeometry(),
    "tiny-llc": DiffGeometry(llc_blocks=64, llc_associativity=2),
    "fine-dbi": DiffGeometry(dbi_granularity=4, llc_blocks=128),
    "tiny-level": DiffGeometry(
        dramcache_blocks=16,
        dramcache_associativity=2,
        dramcache_dbi_granularity=4,
    ),
}

#: Op-schedule generator families (each shapes addresses differently).
FAMILIES = (
    "uniform",
    "row-burst",
    "set-pingpong",
    "dirty-heavy",
    "region-thrash",
)

DRAM_CACHE_BACKENDS = (None, "tag", "dbi")
CHECK_LEVELS = ("cheap", "full")


@dataclass(frozen=True)
class TrialSpec:
    """Everything needed to reproduce one trial from scratch."""

    index: int
    seed: int
    family: str
    mechanism: str
    geometry: str
    dram_cache: Optional[str]
    check_level: str
    cores: int
    refs: int
    footprint: int
    write_fraction: float

    def describe(self) -> str:
        backend = self.dram_cache or "none"
        return (
            f"trial {self.index}: {self.family}/{self.mechanism} "
            f"geometry={self.geometry} dram-cache={backend} "
            f"check={self.check_level} cores={self.cores} refs={self.refs}"
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "family": self.family,
            "mechanism": self.mechanism,
            "geometry": self.geometry,
            "dram_cache": self.dram_cache,
            "check_level": self.check_level,
            "cores": self.cores,
            "refs": self.refs,
            "footprint": self.footprint,
            "write_fraction": self.write_fraction,
        }


# ---------------------------------------------------------------------------
# Op-schedule generators.


def _generate_records(
    family: str, rng: DeterministicRng, refs: int, footprint: int,
    write_fraction: float,
) -> List[Tuple[int, bool, int]]:
    """One core's record list for a generator family."""
    records: List[Tuple[int, bool, int]] = []
    if family == "uniform":
        for _ in range(refs):
            records.append(
                (3, rng.chance(write_fraction), rng.randint(0, footprint - 1))
            )
    elif family == "row-burst":
        # Runs of sequential row-mate writes: the shape AWB and DAWB/VWQ
        # probe rounds are built for.
        while len(records) < refs:
            base = rng.randint(0, max(0, footprint - 16))
            for offset in range(rng.randint(2, 12)):
                if len(records) >= refs:
                    break
                records.append((2, rng.chance(0.75), base + offset))
    elif family == "set-pingpong":
        # A handful of addresses striding the whole footprint: heavy set
        # conflict, constant evictions of recently dirtied blocks.
        stride = max(1, footprint // 8)
        hot = [
            rng.randint(0, stride - 1) + lane * stride for lane in range(8)
        ]
        for _ in range(refs):
            records.append(
                (1, rng.chance(write_fraction), rng.choice(hot))
            )
    elif family == "dirty-heavy":
        # Saturate the dirty budget: DBI entry displacement pressure.
        for _ in range(refs):
            records.append(
                (2, rng.chance(0.85), rng.randint(0, footprint // 2 - 1))
            )
    elif family == "region-thrash":
        # Alternate between two working sets sized near the LLC: fills and
        # writebacks chase each other through the hierarchy.
        for index in range(refs):
            half = (index // 32) % 2
            low = half * (footprint // 2)
            addr = low + rng.randint(0, footprint // 2 - 1)
            records.append((3, rng.chance(write_fraction), addr))
    else:
        raise ValueError(f"unknown generator family {family!r}")
    return records


def build_traces(spec: TrialSpec) -> List[Trace]:
    rng = DeterministicRng(spec.seed)
    return [
        Trace(
            f"conf{spec.index}c{core}",
            _generate_records(
                spec.family,
                rng.derive(f"core{core}"),
                spec.refs,
                spec.footprint,
                spec.write_fraction,
            ),
        )
        for core in range(spec.cores)
    ]


# ---------------------------------------------------------------------------
# Trial execution.


def _system_config(spec: TrialSpec):
    """A small timed-System shape mirroring the trial's DiffGeometry."""
    from repro.cache.config import CacheConfig
    from repro.sim.system import SystemConfig

    geometry = GEOMETRIES[spec.geometry]
    llc = CacheConfig(
        name="llc",
        num_blocks=geometry.llc_blocks,
        associativity=geometry.llc_associativity,
        tag_latency=4,
        data_latency=8,
        serial_lookup=True,
    )
    l1 = CacheConfig(
        name="l1", num_blocks=geometry.l1_blocks,
        associativity=geometry.l1_associativity,
        tag_latency=1, data_latency=1, mshr_entries=16,
    )
    l2 = CacheConfig(
        name="l2", num_blocks=geometry.l2_blocks,
        associativity=geometry.l2_associativity,
        tag_latency=2, data_latency=2,
    )
    dram_cache = None
    if spec.dram_cache is not None:
        dram_cache = geometry.dram_cache_config(spec.dram_cache)
    return SystemConfig(
        num_cores=spec.cores,
        mechanism=spec.mechanism,
        l1=l1,
        l2=l2,
        llc=llc,
        dram=geometry.dram_config(),
        dbi_alpha=geometry.dbi_alpha,
        dbi_granularity=geometry.dbi_granularity,
        dram_cache=dram_cache,
        predictor_epoch_cycles=geometry.predictor_epoch_cycles,
        warmup_fraction=0.0,
    )


@dataclass
class TrialOutcome:
    """One trial's verdict plus the coverage it contributed."""

    spec: TrialSpec
    failures: List[str] = field(default_factory=list)
    coverage: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def _bump(coverage: Dict[str, int], key: str, count: int = 1) -> None:
    coverage[key] = coverage.get(key, 0) + count


def run_trial(spec: TrialSpec, traces: Optional[Sequence[Trace]] = None) -> TrialOutcome:
    """Run both legs of one trial and collect failures + coverage."""
    outcome = TrialOutcome(spec=spec)
    coverage = outcome.coverage
    traces = list(traces if traces is not None else build_traces(spec))
    geometry = GEOMETRIES[spec.geometry]
    _bump(coverage, f"family:{spec.family}")
    _bump(
        coverage,
        f"config:{spec.mechanism}:{spec.dram_cache or 'none'}:"
        f"{spec.check_level}:{spec.geometry}",
    )

    # Differential leg: oracle v2 witness replay.
    recorder = DrainRecorder()
    try:
        report, _snapshot = diff_one_mechanism(
            spec.mechanism, traces, geometry,
            dram_cache=spec.dram_cache, recorder=recorder,
        )
        outcome.failures.extend(
            f"differential: {failure}" for failure in report.failures
        )
    except InvariantViolation as violation:
        outcome.failures.append(f"differential: {violation}")
    for cause, count in recorder.cause_counts.items():
        _bump(coverage, f"writeback-cause:{cause}", count)
    for shape, count in recorder.schedule().interleaving_profile().items():
        _bump(coverage, f"drain:{shape}", count)

    # Engine leg: the full timed system under the invariant engine.
    from repro.sim.system import System

    try:
        system = System(_system_config(spec), traces, check=spec.check_level)
        system.run()
    except InvariantViolation as violation:
        outcome.failures.append(f"engine[{spec.check_level}]: {violation}")
    else:
        engine = system.check_engine
        for name, count in engine.invariant_exercised.items():
            _bump(coverage, f"invariant:{name}", count)
        for ledger in (engine.ledger, engine.dramcache_ledger):
            if ledger is None:
                continue
            for cause, count in ledger.causes.items():
                _bump(coverage, f"writeback-cause:{cause}", count)
    return outcome


# ---------------------------------------------------------------------------
# Failure shrinking.


def _still_fails(
    spec: TrialSpec, record_lists: Sequence[List[Tuple[int, bool, int]]]
) -> bool:
    traces = [
        Trace(f"shrink{core}", list(records))
        for core, records in enumerate(record_lists)
    ]
    if not any(traces[core].records for core in range(len(traces))):
        return False
    return not run_trial(spec, traces=traces).ok


def shrink_failure(
    spec: TrialSpec, traces: Sequence[Trace], max_rounds: int = 12
) -> List[List[Tuple[int, bool, int]]]:
    """ddmin-lite: drop record chunks while the failure still reproduces."""
    record_lists = [list(trace.records) for trace in traces]
    for _ in range(max_rounds):
        shrunk = False
        for core in range(len(record_lists)):
            records = record_lists[core]
            chunk = max(1, len(records) // 4)
            start = 0
            while start < len(record_lists[core]):
                candidate = [list(r) for r in record_lists]
                candidate[core] = (
                    records[:start] + records[start + chunk:]
                )
                if candidate[core] != records and _still_fails(spec, candidate):
                    record_lists[core] = candidate[core]
                    records = record_lists[core]
                    shrunk = True
                else:
                    start += chunk
        if not shrunk:
            break
    return record_lists


# ---------------------------------------------------------------------------
# The campaign.


@dataclass
class CampaignConfig:
    trials: int = 24
    seed: int = 0xC0F0
    out_dir: str = os.path.join("results", "conformance")
    shrink: bool = True


@dataclass
class CampaignResult:
    config: CampaignConfig
    outcomes: List[TrialOutcome]
    coverage: Dict[str, int]
    findings: List[dict]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_text(self) -> str:
        lines = [
            f"conformance campaign: {len(self.outcomes)} trials "
            f"(seed {self.config.seed:#x})",
            f"coverage: {len(self.coverage)} structural keys "
            f"({sum(1 for k in self.coverage if k.startswith('invariant:'))} "
            f"invariants, "
            f"{sum(1 for k in self.coverage if k.startswith('writeback-cause:'))} "
            f"writeback causes, "
            f"{sum(1 for k in self.coverage if k.startswith('drain:'))} "
            f"drain shapes)",
        ]
        if self.findings:
            lines.append(f"FINDINGS: {len(self.findings)}")
            for finding in self.findings:
                lines.append(f"  - {finding['describe']}")
                for failure in finding["failures"][:3]:
                    lines.append(f"      {failure}")
                lines.append(f"    repro: {finding['repro_path']}")
        else:
            lines.append("findings: none")
        return "\n".join(lines)


def _weighted_choice(
    rng: DeterministicRng, items: Sequence[str], weights: Dict[str, float]
) -> str:
    total = sum(weights.get(item, 1.0) for item in items)
    mark = rng.random() * total
    acc = 0.0
    for item in items:
        acc += weights.get(item, 1.0)
        if mark < acc:
            return item
    return items[-1]


def _draw_spec(
    index: int,
    rng: DeterministicRng,
    family_weights: Dict[str, float],
    mechanism_weights: Dict[str, float],
) -> TrialSpec:
    if index < len(MECHANISM_NAMES):
        # Stratified opening: visit every mechanism (and cycle the
        # families) before the energy weights take over, so rare corners
        # like skipcache's writethrough stream are always on the map.
        family = FAMILIES[index % len(FAMILIES)]
        mechanism = MECHANISM_NAMES[index]
    else:
        family = _weighted_choice(rng, FAMILIES, family_weights)
        mechanism = _weighted_choice(rng, MECHANISM_NAMES, mechanism_weights)
    dram_cache = rng.choice(DRAM_CACHE_BACKENDS)
    geometry = rng.choice(
        [name for name in GEOMETRIES if dram_cache or name != "tiny-level"]
    )
    return TrialSpec(
        index=index,
        seed=rng.derive(f"trial{index}").seed,
        family=family,
        mechanism=mechanism,
        geometry=geometry,
        dram_cache=dram_cache,
        check_level=rng.choice(CHECK_LEVELS),
        cores=rng.choice((1, 1, 2)),
        refs=rng.choice((150, 250, 400)),
        footprint=rng.choice((512, 1024, 2048)),
        write_fraction=rng.choice((0.3, 0.5, 0.7)),
    )


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Run the seeded, coverage-guided campaign and write artifacts."""
    rng = DeterministicRng(config.seed)
    coverage: Dict[str, int] = {}
    outcomes: List[TrialOutcome] = []
    findings: List[dict] = []
    # Greybox energy: a family/mechanism that recently found new coverage
    # keys gets proportionally more of the remaining trial budget.
    family_weights = {family: 1.0 for family in FAMILIES}
    mechanism_weights = {name: 1.0 for name in MECHANISM_NAMES}

    os.makedirs(config.out_dir, exist_ok=True)
    for index in range(config.trials):
        spec = _draw_spec(index, rng, family_weights, mechanism_weights)
        outcome = run_trial(spec)
        outcomes.append(outcome)
        # Config-corner keys are excluded from energy: a mechanism earning
        # credit for every unvisited corner of *itself* is a feedback loop
        # that starves the rest of the matrix.
        new_keys = sum(
            1
            for key in outcome.coverage
            if key not in coverage and not key.startswith("config:")
        )
        for key, count in outcome.coverage.items():
            _bump(coverage, key, count)
        if new_keys:
            family_weights[spec.family] = (
                family_weights.get(spec.family, 1.0) + new_keys
            )
            mechanism_weights[spec.mechanism] = (
                mechanism_weights.get(spec.mechanism, 1.0) + new_keys
            )
        if not outcome.ok:
            findings.append(
                _write_finding(config, spec, outcome, len(findings))
            )

    coverage_path = os.path.join(config.out_dir, "coverage.json")
    with open(coverage_path, "w") as handle:
        json.dump(coverage, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return CampaignResult(
        config=config, outcomes=outcomes, coverage=coverage, findings=findings
    )


def _write_finding(
    config: CampaignConfig, spec: TrialSpec, outcome: TrialOutcome,
    ordinal: int,
) -> dict:
    traces = build_traces(spec)
    record_lists = [list(trace.records) for trace in traces]
    if config.shrink:
        record_lists = shrink_failure(spec, traces)
    finding = {
        "describe": spec.describe(),
        "spec": spec.to_dict(),
        "failures": outcome.failures,
        "traces": record_lists,
    }
    path = os.path.join(config.out_dir, f"finding-{ordinal:03d}.json")
    with open(path, "w") as handle:
        json.dump(finding, handle, indent=2, sort_keys=True)
        handle.write("\n")
    finding["repro_path"] = path
    return finding


# ---------------------------------------------------------------------------
# Replay.


def replay_finding(path: str) -> TrialOutcome:
    """Re-run a written finding's (possibly shrunk) trial exactly."""
    with open(path) as handle:
        finding = json.load(handle)
    spec_dict = dict(finding["spec"])
    spec = TrialSpec(**spec_dict)
    traces = [
        Trace(f"replay{core}", [tuple(record) for record in records])
        for core, records in enumerate(finding["traces"])
    ]
    return run_trial(spec, traces=traces)
