"""The invariant catalogue of checked mode.

Two layers:

* **component checks** — plain functions over one structure (a ``Cache``, a
  ``DirtyBlockIndex``, a ``WriteBuffer``...) that raise
  :class:`~repro.check.errors.InvariantViolation` on inconsistency. They are
  reused directly by the differential harness and by unit tests.
* **the registry** — :data:`INVARIANTS`, system-level wrappers the
  :class:`~repro.check.engine.CheckEngine` sweeps periodically and at end of
  run. All registry entries are cheap (structural scans); the
  writeback-conservation check lives in the engine's ledger because it needs
  event-level observation, not snapshots.

Catalogue (names are stable; tests and docs reference them):

===========================  ====================================================
``dbi-tag-agreement``        DBI mechanisms never set in-tag dirty bits; every
                             DBI-dirty block is present in the LLC; the dirty
                             population respects α·N (paper Section 2.1).
``dbi-structure``            entry valid ⇔ nonzero bit vector; the region→way
                             map is a bijection onto valid entries; bit vectors
                             fit the region granularity.
``cache-structure``          each cache's addr→way map is a bijection onto its
                             valid blocks, and every block sits in the set its
                             address hashes to.
``recency-sanity``           every recency stack (LLC LRU/DIP stacks, DBI LRW
                             stacks) is a permutation of the ways.
``dramcache-structure``      DRAM-cache tag array (and DBI, if configured)
                             structural consistency.
``dramcache-dirty-domain``   tag backend: no DBI; dbi backend: tag array
                             clean and every DBI-dirty block resident.
``mshr-bounds``              MSHR occupancy respects capacity; no registered
                             miss has an empty waiter list.
``writebuffer-bounds``       DRAM write-buffer occupancy ≤ capacity and its
                             FIFO and by-address views agree.
``port-sanity``              tag-port bookkeeping: queued work implies a grant
                             pass is pending (no silent stalls).
``core-bounds``              per-core outstanding loads ≤ the configured MSHR
                             bound.
``writeback-conservation``   (full mode, engine-owned) every dirty block is
                             written back exactly once or explicitly discarded.
``retry-consistency``        (runner-owned) a retried sweep job reproduces its
                             previously stored result exactly — a retry never
                             double-counts a writeback or any other stat.
===========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.check.errors import InvariantViolation


def _fail(name: str, detail: str) -> None:
    raise InvariantViolation(name, detail)


# ---------------------------------------------------------------------------
# Component-level checks (reused by the differential harness and tests).


def check_cache_structure(cache, label: str = None) -> None:
    """``cache-structure`` for one :class:`repro.cache.cache.Cache`."""
    name = "cache-structure"
    label = label or cache.stats.name
    valid = {}
    for set_idx, ways in enumerate(cache.sets):
        for way, block in enumerate(ways):
            if not block.valid:
                continue
            if block.addr in valid:
                _fail(name, f"{label}: block {block.addr:#x} cached twice")
            valid[block.addr] = (set_idx, way)
            if cache.set_index(block.addr) != set_idx:
                _fail(
                    name,
                    f"{label}: block {block.addr:#x} sits in set {set_idx} "
                    f"but hashes to set {cache.set_index(block.addr)}",
                )
    for addr, way in cache._where.items():
        if addr not in valid:
            _fail(name, f"{label}: lookup map lists absent block {addr:#x}")
        if valid[addr][1] != way:
            _fail(
                name,
                f"{label}: lookup map places block {addr:#x} in way {way}, "
                f"tags have it in way {valid[addr][1]}",
            )
    if len(valid) != len(cache._where):
        missing = sorted(set(valid) - set(cache._where))[:4]
        _fail(
            name,
            f"{label}: {len(valid)} valid blocks but {len(cache._where)} "
            f"lookup entries (e.g. unmapped {['%#x' % a for a in missing]})",
        )


def check_recency_stacks(stacks, num_ways: int, label: str) -> None:
    """``recency-sanity`` for one list of per-set recency stacks."""
    name = "recency-sanity"
    expected = set(range(num_ways))
    for set_idx, stack in enumerate(stacks):
        if len(stack) != num_ways or set(stack) != expected:
            _fail(
                name,
                f"{label}: set {set_idx} recency stack {stack} is not a "
                f"permutation of 0..{num_ways - 1}",
            )


def check_policy_recency(policy, label: str) -> None:
    """Apply ``recency-sanity`` to any policy that keeps recency stacks."""
    stacks = getattr(policy, "_stacks", None)
    if stacks is not None:
        check_recency_stacks(stacks, policy.num_ways, label)


def check_dbi_structure(dbi) -> None:
    """``dbi-structure`` for one :class:`repro.core.dbi.DirtyBlockIndex`."""
    name = "dbi-structure"
    config = dbi.config
    valid = {}
    for set_idx, ways in enumerate(dbi.sets):
        for way, entry in enumerate(ways):
            if not entry.valid:
                if entry.bitvector:
                    _fail(
                        name,
                        f"invalid entry (set {set_idx} way {way}) holds "
                        f"bit vector {entry.bitvector:#x}",
                    )
                continue
            if entry.bitvector == 0:
                _fail(
                    name,
                    f"valid entry for region {entry.region_id} (set {set_idx} "
                    f"way {way}) has an empty bit vector",
                )
            if entry.bitvector >> config.granularity:
                _fail(
                    name,
                    f"region {entry.region_id} bit vector {entry.bitvector:#x} "
                    f"exceeds granularity {config.granularity}",
                )
            if config.set_of(entry.region_id) != set_idx:
                _fail(
                    name,
                    f"region {entry.region_id} stored in set {set_idx} but "
                    f"hashes to set {config.set_of(entry.region_id)}",
                )
            if entry.region_id in valid:
                _fail(name, f"region {entry.region_id} has two valid entries")
            valid[entry.region_id] = way
    if valid != dict(dbi._where):
        _fail(
            name,
            f"region→way map disagrees with the entry array: "
            f"map has {len(dbi._where)} regions, array has {len(valid)}",
        )
    if dbi.tracked_dirty_blocks > config.tracked_blocks:
        _fail(
            name,
            f"DBI tracks {dbi.tracked_dirty_blocks} dirty blocks, over its "
            f"α·N budget of {config.tracked_blocks}",
        )


def check_dbi_tag_agreement(mechanism, llc) -> None:
    """``dbi-tag-agreement`` for one mechanism over its LLC."""
    name = "dbi-tag-agreement"
    tagless = not mechanism.uses_tag_dirty_bits
    write_through = getattr(mechanism, "write_through", False)
    if (tagless or write_through) and llc.dirty_count:
        dirty = [b.addr for b in llc.iter_valid_blocks() if b.dirty][:4]
        _fail(
            name,
            f"{mechanism.name}: {llc.dirty_count} in-tag dirty bit(s) set "
            f"(e.g. {['%#x' % a for a in dirty]}) on a cache that must "
            f"keep tags clean",
        )
    dbi = getattr(mechanism, "dbi", None)
    if dbi is None or not tagless:
        return
    for block in dbi.all_dirty_blocks():
        if not llc.contains(block):
            _fail(
                name,
                f"{mechanism.name}: DBI marks block {block:#x} dirty but the "
                f"LLC does not hold it",
            )


def check_dramcache_dirty_domain(level) -> None:
    """``dramcache-dirty-domain`` for one DRAM-cache level.

    Under the tag backend the tag array owns all dirty state (no DBI
    exists); under the DBI backend the tag array must stay clean and every
    DBI-dirty block must be resident in the level — the DBI never tracks a
    block whose data left the stacked array.
    """
    name = "dramcache-dirty-domain"
    if level.backend.tag_dirty:
        if level.dbi is not None:
            _fail(name, "tag backend carries a DBI instance")
        return
    if level.tags.dirty_count:
        dirty = [
            b.addr for b in level.tags.iter_valid_blocks() if b.dirty
        ][:4]
        _fail(
            name,
            f"dbi backend: {level.tags.dirty_count} in-tag dirty bit(s) set "
            f"(e.g. {['%#x' % a for a in dirty]}); the DBI is the sole "
            f"dirtiness authority",
        )
    for block in level.dbi.all_dirty_blocks():
        if not level.tags.contains(block):
            _fail(
                name,
                f"DBI marks block {block:#x} dirty but the DRAM cache does "
                f"not hold it",
            )


def check_mshr(mshr, label: str) -> None:
    """``mshr-bounds`` for one :class:`repro.cache.mshr.MshrFile`."""
    name = "mshr-bounds"
    if mshr.capacity and len(mshr) > mshr.capacity:
        _fail(name, f"{label}: {len(mshr)} misses in a {mshr.capacity}-entry file")
    for addr, waiters in mshr._pending.items():
        if not waiters:
            _fail(name, f"{label}: miss on block {addr:#x} has no waiters")


def check_write_buffer(write_buffer) -> None:
    """``writebuffer-bounds`` for the DRAM controller's write buffer."""
    name = "writebuffer-bounds"
    entries = write_buffer._entries
    by_addr = write_buffer._by_addr
    if len(entries) > write_buffer.capacity:
        _fail(
            name,
            f"{len(entries)} buffered writes exceed capacity "
            f"{write_buffer.capacity}",
        )
    addrs = [request.block_addr for request in entries]
    if len(set(addrs)) != len(addrs):
        _fail(name, "duplicate block address in the write buffer FIFO")
    if set(addrs) != set(by_addr):
        _fail(
            name,
            f"FIFO and by-address views disagree: {len(addrs)} queued vs "
            f"{len(by_addr)} indexed",
        )
    for request in entries:
        if not request.is_write:
            _fail(name, f"read request for block {request.block_addr:#x} buffered")


def check_port_sanity(port) -> None:
    """``port-sanity`` for the shared LLC tag port."""
    name = "port-sanity"
    if port.queued:
        grant = port._grant_event
        if grant is None or grant.cancelled:
            _fail(
                name,
                f"{port.queued} lookup(s) queued but no grant pass pending "
                f"(tag port stalled)",
            )


def check_retry_consistency(label: str, stored: dict, rerun: dict) -> None:
    """``retry-consistency`` between two executions of one sweep job.

    The simulator is deterministic, so a job retried after a worker crash
    (or executed concurrently by two sweeps) must reproduce the stored
    :class:`~repro.sim.system.SimulationResult` dict byte for byte. A
    divergence means an attempt double-counted a writeback or stat — e.g. a
    partially executed attempt leaked state into the retry.
    """
    name = "retry-consistency"
    if stored == rerun:
        return
    stored_stats = stored.get("stats") or {}
    rerun_stats = rerun.get("stats") or {}
    for stat in sorted(set(stored_stats) | set(rerun_stats)):
        if stored_stats.get(stat) != rerun_stats.get(stat):
            _fail(
                name,
                f"{label}: retried execution disagrees with the stored "
                f"result on stat {stat!r}: {stored_stats.get(stat)} stored "
                f"vs {rerun_stats.get(stat)} on retry (double-counted "
                f"writeback/stat?)",
            )
    diverging = sorted(
        field
        for field in set(stored) | set(rerun)
        if stored.get(field) != rerun.get(field)
    )
    _fail(
        name,
        f"{label}: retried execution diverges from the stored result on "
        f"field(s) {diverging}",
    )


def check_core_bounds(core) -> None:
    """``core-bounds`` for one :class:`repro.sim.core_model.OooCore`."""
    name = "core-bounds"
    if core.outstanding_loads > core.max_outstanding_loads:
        _fail(
            name,
            f"core {core.core_id}: {core.outstanding_loads} outstanding loads "
            f"exceed the limit of {core.max_outstanding_loads}",
        )


# ---------------------------------------------------------------------------
# System-level registry.


@dataclass(frozen=True)
class Invariant:
    """One registered system-wide check.

    ``fn`` returns True when the check actually examined state and False
    when it was vacuous for this system shape (e.g. ``dbi-structure`` on a
    mechanism without a DBI). The engine counts exercised sweeps per
    invariant; ``repro conformance`` uses those counts as coverage.
    """

    name: str
    description: str
    fn: Callable[[object], bool]


def _sys_dbi_tag_agreement(system) -> bool:
    check_dbi_tag_agreement(system.mechanism, system.llc)
    return True


def _sys_dbi_structure(system) -> bool:
    dbi = getattr(system.mechanism, "dbi", None)
    if dbi is None:
        return False
    check_dbi_structure(dbi)
    return True


def _sys_cache_structure(system) -> bool:
    check_cache_structure(system.llc)
    hierarchy = getattr(system, "hierarchy", None)
    if hierarchy is not None:
        for cache in list(hierarchy.l1s) + list(hierarchy.l2s):
            check_cache_structure(cache)
    return True


def _sys_recency_sanity(system) -> bool:
    check_policy_recency(system.llc.policy, "llc")
    dbi = getattr(system.mechanism, "dbi", None)
    if dbi is not None:
        check_policy_recency(dbi.policy, "dbi")
    hierarchy = getattr(system, "hierarchy", None)
    if hierarchy is not None:
        for cache in list(hierarchy.l1s) + list(hierarchy.l2s):
            check_policy_recency(cache.policy, cache.stats.name)
    level = getattr(system, "dram_cache", None)
    if level is not None:
        check_policy_recency(level.tags.policy, "dramcache")
        if level.dbi is not None:
            check_policy_recency(level.dbi.policy, "dramcache-dbi")
    return True


def _sys_dramcache_structure(system) -> bool:
    level = getattr(system, "dram_cache", None)
    if level is None:
        return False
    check_cache_structure(level.tags, "dramcache")
    if level.dbi is not None:
        check_dbi_structure(level.dbi)
    return True


def _sys_dramcache_dirty_domain(system) -> bool:
    level = getattr(system, "dram_cache", None)
    if level is None:
        return False
    check_dramcache_dirty_domain(level)
    return True


def _sys_mshr_bounds(system) -> bool:
    hierarchy = getattr(system, "hierarchy", None)
    if hierarchy is None:
        return False
    for index, mshr in enumerate(hierarchy.l1_mshrs):
        check_mshr(mshr, f"l1mshr{index}")
    return True


def _sys_writebuffer_bounds(system) -> bool:
    check_write_buffer(system.memory.write_buffer)
    level = getattr(system, "dram_cache", None)
    if level is not None:
        check_write_buffer(level.stacked.write_buffer)
    return True


def _sys_port_sanity(system) -> bool:
    check_port_sanity(system.port)
    return True


def _sys_core_bounds(system) -> bool:
    cores = tuple(getattr(system, "cores", ()))
    for core in cores:
        check_core_bounds(core)
    return bool(cores)


#: Ordered registry swept by the engine (cheap mode and up).
INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        "dbi-tag-agreement",
        "DBI↔tag-store dirty-bit agreement (paper Section 2.1)",
        _sys_dbi_tag_agreement,
    ),
    Invariant(
        "dbi-structure",
        "DBI entry valid⇔nonzero bit vector and region-map bijection",
        _sys_dbi_structure,
    ),
    Invariant(
        "cache-structure",
        "cache addr→way maps mirror the tag arrays at every level",
        _sys_cache_structure,
    ),
    Invariant(
        "recency-sanity",
        "replacement recency stacks are permutations of the ways",
        _sys_recency_sanity,
    ),
    Invariant(
        "dramcache-structure",
        "DRAM-cache tag array and DBI structural consistency",
        _sys_dramcache_structure,
    ),
    Invariant(
        "dramcache-dirty-domain",
        "DRAM-cache dirty state lives where the backend says it does",
        _sys_dramcache_dirty_domain,
    ),
    Invariant(
        "mshr-bounds",
        "MSHR occupancy and waiter-list sanity",
        _sys_mshr_bounds,
    ),
    Invariant(
        "writebuffer-bounds",
        "DRAM write-buffer occupancy and index consistency",
        _sys_writebuffer_bounds,
    ),
    Invariant(
        "port-sanity",
        "queued tag lookups always have a grant pass pending",
        _sys_port_sanity,
    ),
    Invariant(
        "core-bounds",
        "outstanding loads per core within the configured bound",
        _sys_core_bounds,
    ),
)


def invariant_names() -> List[str]:
    """Registry names plus the engine- and runner-owned checks (for docs/CLI)."""
    return [invariant.name for invariant in INVARIANTS] + [
        "writeback-conservation",
        "retry-consistency",
    ]
