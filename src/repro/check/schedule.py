"""Op-relative drain schedules: the ordering witness of oracle v2.

The untimed oracle can predict *what* a mechanism does architecturally, but
not *when* timing-dependent work retires: background writebacks (AWB
flushes, DBI-displacement drains, DAWB/VWQ probe hits) land at port-grant
times, and predictor-driven fetches (CLB's bypassed-but-resident reads,
Skip Cache's bypasses) depend on epoch clocks the oracle does not model.
Both are invisible at the LLC — final state there is order-free — but
visible one level down, where every read/write reorders the DRAM-cache
level's LRU stacks.

Oracle v2 splits the two concerns. The timed serialized run carries a
:class:`DrainRecorder` that logs, per demand op, every ledger-tracked
memory writeback (with its cause) and every memory fetch as it retires.
The resulting :class:`DrainSchedule` is handed to the oracle, which still
*decides* architecturally — which blocks a probe round writes back, which
reads miss — but validates its decisions against the witness per op
(exactly-once, same multiset) and *emits* them in the recorded op-relative
order. A timing bug that drops, duplicates or invents a drain therefore
surfaces as a witness mismatch at the op where it happened, rather than as
an unattributable LRU divergence thousands of ops later.

Causes are stable strings (coverage keys for ``repro conformance``):

=================  ========================================================
``evict``          demand writeback of a dirty block falling out of a cache
``writethrough``   Skip Cache's per-request memory write
``awb``            DBI Aggressive Writeback row-mate flush (Section 3.1)
``dbi-displace``   DBI entry displacement drain (Section 2.2.4)
``dawb-probe``     DAWB background row probe that found a dirty block
``vwq-probe``      VWQ LRU-half probe that found a dirty block
``awb-drain``      DRAM-cache level: whole-row drain on a dirty eviction
=================  ========================================================
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Causes the oracle predicts inline at its own demand-op processing points;
#: everything else is background work whose retire order the witness fixes.
DEMAND_CAUSES = frozenset({"evict", "writethrough"})

#: Every writeback cause the LLC mechanisms can report.
WRITEBACK_CAUSES = (
    "evict",
    "writethrough",
    "awb",
    "dbi-displace",
    "dawb-probe",
    "vwq-probe",
)


class DrainRecorder:
    """Timed-side witness log, attached as ``mechanism.recorder``.

    :meth:`begin_op` is called by the serialized driver before each trace
    record is issued; the mechanism hooks call :meth:`on_memory_writeback`
    and :meth:`on_memory_fetch` as requests leave for the memory side, which
    under one-op-at-a-time driving is the op-relative retire order.
    """

    def __init__(self) -> None:
        self.op_index = -1
        #: op -> background writeback addrs, in retire order.
        self.background: Dict[int, List[int]] = {}
        #: op -> fetched addrs, in issue order.
        self.fetches: Dict[int, List[int]] = {}
        #: cause -> count over the whole run (coverage surface).
        self.cause_counts: Dict[str, int] = {}

    def begin_op(self, op_index: int) -> None:
        self.op_index = op_index

    def on_memory_writeback(self, addr: int, cause: str) -> None:
        self.cause_counts[cause] = self.cause_counts.get(cause, 0) + 1
        if cause in DEMAND_CAUSES:
            return
        self.background.setdefault(self.op_index, []).append(addr)

    def on_memory_fetch(self, addr: int) -> None:
        self.fetches.setdefault(self.op_index, []).append(addr)

    def schedule(self) -> "DrainSchedule":
        return DrainSchedule(self.background, self.fetches, self.cause_counts)


class DrainSchedule:
    """Replay cursor over one recorded run (consumed by the oracle)."""

    def __init__(
        self,
        background: Dict[int, List[int]],
        fetches: Dict[int, List[int]],
        cause_counts: Dict[str, int],
    ) -> None:
        self._background = {op: list(addrs) for op, addrs in background.items()}
        self._fetches = {op: list(addrs) for op, addrs in fetches.items()}
        self.cause_counts = dict(cause_counts)
        self._fetch_cursor: Dict[int, int] = {}

    # ------------------------------------------------------- writebacks

    def background_for_op(self, op_index: int) -> List[int]:
        """Recorded background writebacks of one op (consumed once)."""
        return self._background.pop(op_index, [])

    # ----------------------------------------------------------- fetches

    def peek_fetch(self, op_index: int) -> int | None:
        """Next unconsumed fetched address of the op, if any."""
        pending = self._fetches.get(op_index)
        cursor = self._fetch_cursor.get(op_index, 0)
        if pending is None or cursor >= len(pending):
            return None
        return pending[cursor]

    def take_fetch(self, op_index: int) -> int | None:
        """Consume and return the op's next fetched address."""
        addr = self.peek_fetch(op_index)
        if addr is not None:
            self._fetch_cursor[op_index] = self._fetch_cursor.get(op_index, 0) + 1
        return addr

    def take_fetches(self, op_index: int) -> List[int]:
        """Consume every remaining fetch of the op (Skip Cache replay)."""
        taken = []
        while True:
            addr = self.take_fetch(op_index)
            if addr is None:
                return taken
            taken.append(addr)

    # -------------------------------------------------------- leftovers

    def leftovers(self) -> List[str]:
        """Witness events the oracle never consumed (end-of-run check)."""
        problems: List[str] = []
        for op, addrs in sorted(self._background.items()):
            problems.append(
                f"op {op}: {len(addrs)} recorded background writeback(s) "
                f"never replayed (e.g. {['%#x' % a for a in addrs[:4]]})"
            )
        for op, addrs in sorted(self._fetches.items()):
            cursor = self._fetch_cursor.get(op, 0)
            if cursor < len(addrs):
                rest = addrs[cursor:]
                problems.append(
                    f"op {op}: timing fetched "
                    f"{['%#x' % a for a in rest[:4]]} but the oracle never "
                    f"issued the fetch"
                )
        return problems

    def interleaving_profile(self) -> Dict[str, int]:
        """Structural coverage of drain interleavings (conformance map).

        Buckets how many background drains each op carried and whether ops
        mixed replayed fetches with drains — the shapes that distinguish
        a schedule that actually exercised op-relative ordering from one
        that never left the demand-only fast path.
        """
        profile: Dict[str, int] = {}

        def bump(key: str) -> None:
            profile[key] = profile.get(key, 0) + 1

        for op, addrs in self._background.items():
            bucket = "1" if len(addrs) == 1 else ("2-4" if len(addrs) <= 4 else "5+")
            bump(f"drain-burst:{bucket}")
            if op in self._fetches:
                bump("drain-with-fetch-op")
        for addrs in self._fetches.values():
            bump("fetch-replay-op")
            if len(addrs) > 1:
                bump("fetch-replay-multi")
        return profile


def merge_cause_counts(
    into: Dict[str, int], counts: Dict[str, int]
) -> Dict[str, int]:
    """Accumulate writeback-cause counters (shared by conformance/ledger)."""
    for cause, count in counts.items():
        into[cause] = into.get(cause, 0) + count
    return into


def schedule_events(schedule: DrainSchedule) -> List[Tuple[int, str, int]]:
    """Flatten a schedule for tests: (op, kind, addr) in op order."""
    events: List[Tuple[int, str, int]] = []
    for op, addrs in sorted(schedule._background.items()):
        events.extend((op, "wb", addr) for addr in addrs)
    for op, addrs in sorted(schedule._fetches.items()):
        events.extend((op, "fetch", addr) for addr in addrs)
    return events
