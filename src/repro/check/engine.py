"""Runtime invariant engine (the ``--check`` flag).

Levels:

* ``off``   — nothing is attached; the simulator runs with zero overhead
  (the hot-path hooks are ``if observer is not None`` tests against class
  attributes that stay ``None``).
* ``cheap`` — the registry of structural invariants
  (:data:`repro.check.invariants.INVARIANTS`) is swept periodically while
  the simulation runs and once after the event queue drains.
* ``full``  — additionally attaches dirty-transition observers to the LLC
  tag store and the DBI plus a writeback tap on the mechanism, feeding a
  :class:`~repro.check.ledger.WritebackLedger` that enforces exactly-once
  writeback conservation; periodic sweeps run more often.

Checked runs produce byte-identical :class:`SimulationResult`s to unchecked
runs: the engine only observes, never schedules work that perturbs timing
(its periodic event is read-only and re-arms only while other events exist,
so it cannot keep the queue alive).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.check.errors import InvariantViolation
from repro.check.invariants import INVARIANTS
from repro.check.ledger import WritebackLedger


class CheckLevel(enum.Enum):
    """How much runtime verification a simulation carries."""

    OFF = "off"
    CHEAP = "cheap"
    FULL = "full"

    @classmethod
    def parse(cls, value) -> "CheckLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            options = ", ".join(level.value for level in cls)
            raise ValueError(
                f"unknown check level {value!r}; choose from {options}"
            ) from None


#: Cycles between periodic invariant sweeps, per level.
SWEEP_INTERVALS = {
    CheckLevel.CHEAP: 50_000,
    CheckLevel.FULL: 10_000,
}


class _LedgerTap:
    """Dirty-transition observer bound to one dedicated ledger.

    The engine itself observes the LLC-mechanism dirty domain; a system
    with a DRAM-cache level has a *second*, independent dirty domain (the
    same block address can legitimately be dirty in both at once), so the
    level's tag array, DBI and off-chip writeback hook feed their own
    :class:`WritebackLedger` through this tap.
    """

    def __init__(self, ledger: WritebackLedger) -> None:
        self.ledger = ledger

    def on_block_dirtied(self, addr: int) -> None:
        self.ledger.on_block_dirtied(addr)

    def on_block_cleaned(self, addr: int) -> None:
        self.ledger.on_block_cleaned(addr)

    def on_dirty_evicted(self, addr: int) -> None:
        self.ledger.on_block_cleaned(addr)

    def on_dirty_invalidated(self, addr: int) -> None:
        self.ledger.on_dirty_discarded(addr)

    def on_memory_writeback(self, addr: int, cause: str = "evict") -> None:
        self.ledger.on_memory_writeback(addr, cause)


class CheckEngine:
    """Observes one :class:`~repro.sim.system.System` and raises on divergence.

    Usage (done automatically by ``System(..., check=...)``)::

        engine = CheckEngine(system, CheckLevel.FULL)
        engine.attach()
        system.run()          # System calls engine.finalize() afterwards
    """

    def __init__(
        self,
        system,
        level: CheckLevel,
        interval: Optional[int] = None,
    ) -> None:
        self.system = system
        self.level = CheckLevel.parse(level)
        if self.level is CheckLevel.OFF:
            raise ValueError("CheckEngine is never built for level 'off'")
        self.interval = interval or SWEEP_INTERVALS[self.level]
        self.sweeps = 0
        #: invariant name -> number of sweeps that actually exercised it
        #: (a registry fn returning False was vacuous for this system shape).
        self.invariant_exercised: Dict[str, int] = {}
        self.ledger: Optional[WritebackLedger] = None
        self.dramcache_ledger: Optional[WritebackLedger] = None

    # ------------------------------------------------------------- wiring

    def attach(self) -> None:
        """Install observers and arm the periodic sweep."""
        if self.level is CheckLevel.FULL:
            mechanism = self.system.mechanism
            self.ledger = WritebackLedger(
                write_through=getattr(mechanism, "write_through", False)
            )
            self.system.llc.observer = self
            dbi = getattr(mechanism, "dbi", None)
            if dbi is not None:
                dbi.observer = self
            mechanism.checker = self
            level = getattr(self.system, "dram_cache", None)
            if level is not None:
                # The DRAM-cache level is its own dirty domain: its ledger
                # conserves writebacks from the level to off-chip DRAM,
                # independent of the LLC→level domain above.
                self.dramcache_ledger = WritebackLedger(write_through=False)
                tap = _LedgerTap(self.dramcache_ledger)
                level.tags.observer = tap
                if level.dbi is not None:
                    level.dbi.observer = tap
                level.checker = tap
        self._arm()

    def _arm(self) -> None:
        # Audit events are excluded from event accounting, so the sweep is
        # invisible to events_processed and to max_events budgets.
        self.system.queue.schedule_after(
            self.interval, self._sweep_event, audit=True
        )

    def _sweep_event(self) -> None:
        self.run_checks(f"cycle {self.system.queue.now}")
        # Re-arm only while other work remains; a standing periodic event
        # would keep EventQueue.run() from ever draining.
        if len(self.system.queue) > 0:
            self._arm()

    # -------------------------------------- dirty-transition observer API
    # Fired by Cache (tag dirty bits) and DirtyBlockIndex (DBI bits); both
    # feed the same ledger because a block's dirtiness lives in exactly one
    # of the two structures per mechanism.

    def on_block_dirtied(self, addr: int) -> None:
        self.ledger.on_block_dirtied(addr)

    def on_block_cleaned(self, addr: int) -> None:
        self.ledger.on_block_cleaned(addr)

    def on_dirty_evicted(self, addr: int) -> None:
        # An eviction's dirty data is written back: same as a clean.
        self.ledger.on_block_cleaned(addr)

    def on_dirty_invalidated(self, addr: int) -> None:
        self.ledger.on_dirty_discarded(addr)

    def on_memory_writeback(self, addr: int, cause: str = "evict") -> None:
        self.ledger.on_memory_writeback(addr, cause)

    # ------------------------------------------------------------- sweeps

    def _machine_dirty_blocks(self) -> List[int]:
        mechanism = self.system.mechanism
        dbi = getattr(mechanism, "dbi", None)
        if dbi is not None and not mechanism.uses_tag_dirty_bits:
            return dbi.all_dirty_blocks()
        return [
            block.addr
            for block in self.system.llc.iter_valid_blocks()
            if block.dirty
        ]

    def run_checks(self, where: str = "on demand") -> None:
        """One full sweep of the registry (plus ledger agreement in full)."""
        for invariant in INVARIANTS:
            if invariant.fn(self.system):
                self.invariant_exercised[invariant.name] = (
                    self.invariant_exercised.get(invariant.name, 0) + 1
                )
        if self.ledger is not None:
            self.ledger.assert_agrees(self._machine_dirty_blocks(), where)
        if self.dramcache_ledger is not None:
            self.dramcache_ledger.assert_agrees(
                self.system.dram_cache.dirty_blocks(), f"dram-cache {where}"
            )
        self.sweeps += 1

    def finalize(self) -> None:
        """End-of-run checks: final sweep plus writeback quiescence."""
        self.run_checks("end of run")
        mechanism = self.system.mechanism
        if not mechanism.is_idle():
            raise InvariantViolation(
                "writeback-conservation",
                "simulation ended with LLC fills or writebacks still queued",
            )
        level = getattr(self.system, "dram_cache", None)
        if level is not None and not level.is_idle():
            raise InvariantViolation(
                "writeback-conservation",
                "simulation ended with DRAM-cache fills or writebacks "
                "still queued",
            )
        if self.ledger is not None:
            self.ledger.assert_quiescent()
        if self.dramcache_ledger is not None:
            self.dramcache_ledger.assert_quiescent()
