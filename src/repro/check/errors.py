"""Error type raised by the checked-mode invariant engine.

A violation is an :class:`AssertionError` subclass so existing test harnesses
(and ``pytest.raises(AssertionError)``) catch it, while callers that want to
distinguish engine findings from ordinary asserts can catch the subclass.
"""

from __future__ import annotations


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulator was observed to be false.

    Attributes:
        invariant: name of the violated invariant (see
            :mod:`repro.check.invariants` for the catalogue).
        detail: human-readable description of the observed inconsistency.
    """

    def __init__(self, invariant: str, detail: str) -> None:
        self.invariant = invariant
        self.detail = detail
        super().__init__(f"[{invariant}] {detail}")
