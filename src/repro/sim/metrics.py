"""Multi-programmed performance and fairness metrics (paper Section 5).

All metrics compare each application's IPC in the shared run against its IPC
running alone on the same machine:

* weighted speedup [50] — system throughput,
* instruction throughput — plain IPC sum,
* harmonic speedup [32] — balances throughput and fairness,
* maximum slowdown [14, 24] — worst-case per-application slowdown.
"""

from __future__ import annotations

import math
from typing import Sequence


def _check(shared: Sequence[float], alone: Sequence[float]) -> None:
    if len(shared) != len(alone):
        raise ValueError(
            f"length mismatch: {len(shared)} shared vs {len(alone)} alone IPCs"
        )
    if not shared:
        raise ValueError("need at least one application")
    if any(ipc <= 0 for ipc in list(shared) + list(alone)):
        raise ValueError("IPCs must be positive")


def weighted_speedup(shared: Sequence[float], alone: Sequence[float]) -> float:
    """Sum over apps of IPC_shared / IPC_alone."""
    _check(shared, alone)
    return sum(s / a for s, a in zip(shared, alone))


def instruction_throughput(shared: Sequence[float]) -> float:
    """Sum of shared-mode IPCs."""
    if not shared:
        raise ValueError("need at least one application")
    return sum(shared)


def harmonic_speedup(shared: Sequence[float], alone: Sequence[float]) -> float:
    """N / sum(IPC_alone / IPC_shared) — harmonic mean of speedups."""
    _check(shared, alone)
    return len(shared) / sum(a / s for s, a in zip(shared, alone))


def maximum_slowdown(shared: Sequence[float], alone: Sequence[float]) -> float:
    """max over apps of IPC_alone / IPC_shared (lower is fairer)."""
    _check(shared, alone)
    return max(a / s for s, a in zip(shared, alone))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for Figure 6's gmean column).

    Computed in the log domain: a running product of many small (or large)
    values underflows to 0.0 (or overflows to inf) long before the mean
    itself leaves float range.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("values must be positive")
    return math.exp(math.fsum(math.log(v) for v in values) / len(values))
