"""External trace ingestion: validate, convert, register.

Externally captured memory traces — gem5 ``MemTrace``-style text dumps,
coreblocks-style logs — become first-class campaign workloads through a
three-step pipeline:

1. **validate + convert**: parse the source format strictly (monotonic
   timestamps, known commands, sane addresses), collapse ticks into the
   simulator's inter-reference ``gap`` cycles, and map byte addresses to
   block addresses;
2. **serialize**: write the result as a canonical ``DBITRACE`` container
   (:mod:`repro.sim.tracefile`), the same bytes a direct ``save_trace``
   round-trip would produce;
3. **register**: record name → file, sha256, record count in an atomic
   ``registry.json`` manifest so campaign cells can pin the trace identity
   in their plan fingerprint and refuse drifted bytes on resume.

The text parser is deliberately tolerant of cosmetic variation (comments,
comma or whitespace separation, hex or decimal addresses, ``r``/``Read``/
``ReadReq`` command spellings) and deliberately strict about structure:
short lines, unknown commands, and time travel are hard errors with line
numbers, never silently skipped records.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import Trace
from repro.sim.tracefile import MAGIC, load_trace, save_trace
from repro.utils.atomic import atomic_write_json
from repro.utils.validation import check_positive

REGISTRY_NAME = "registry.json"
REGISTRY_FORMAT = 1

#: Commands accepted as reads / writes (case-insensitive, gem5 + pintool
#: + coreblocks spellings).
READ_COMMANDS = {"r", "rd", "read", "readreq", "readexreq", "ld", "load"}
WRITE_COMMANDS = {"w", "wr", "write", "writereq", "writebackdirty", "st",
                  "store"}

#: Registered names become path components and campaign cell ids.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: One gap unit per this many source ticks (gem5 defaults to picosecond
#: ticks; 1000 ticks ~ 1 ns ~ a few cycles).
DEFAULT_GAP_SCALE = 1000

#: Gaps are clamped so one idle stretch in a capture cannot stall the
#: simulated core for millions of cycles.
DEFAULT_MAX_GAP = 10_000


def file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def parse_gem5_trace(
    lines: Iterable[str],
    name: str,
    block_bytes: int = 64,
    gap_scale: int = DEFAULT_GAP_SCALE,
    max_gap: int = DEFAULT_MAX_GAP,
) -> Trace:
    """Parse a gem5-style text trace into a :class:`Trace`.

    Accepted line shape (``#``-to-end-of-line comments and blank lines are
    ignored)::

        <tick> <command> <address> [size]

    separated by whitespace and/or commas, with an optional ``:`` after the
    tick. Ticks must be non-decreasing; addresses may be hex (``0x...``) or
    decimal bytes and are converted to ``block_bytes``-sized block
    addresses; tick deltas shrink by ``gap_scale`` and clamp at ``max_gap``.
    """
    check_positive("block_bytes", block_bytes)
    check_positive("gap_scale", gap_scale)
    check_positive("max_gap", max_gap)
    records: List[Tuple[int, bool, int]] = []
    previous_tick: Optional[int] = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.replace(",", " ").split()
        if len(fields) < 3:
            raise ValueError(
                f"{name}:{lineno}: truncated record {line!r} "
                "(want: <tick> <command> <address>)"
            )
        tick_text, command, addr_text = fields[0], fields[1], fields[2]
        try:
            tick = int(tick_text.rstrip(":"), 10)
        except ValueError:
            raise ValueError(
                f"{name}:{lineno}: bad tick {tick_text!r}"
            ) from None
        if tick < 0:
            raise ValueError(f"{name}:{lineno}: negative tick {tick}")
        if previous_tick is not None and tick < previous_tick:
            raise ValueError(
                f"{name}:{lineno}: tick {tick} goes back in time "
                f"(previous {previous_tick})"
            )
        lowered = command.lower()
        if lowered in READ_COMMANDS:
            is_write = False
        elif lowered in WRITE_COMMANDS:
            is_write = True
        else:
            raise ValueError(
                f"{name}:{lineno}: unknown command {command!r} "
                f"(reads: {sorted(READ_COMMANDS)}, "
                f"writes: {sorted(WRITE_COMMANDS)})"
            )
        try:
            addr = int(addr_text, 0)
        except ValueError:
            raise ValueError(
                f"{name}:{lineno}: bad address {addr_text!r}"
            ) from None
        if addr < 0:
            raise ValueError(f"{name}:{lineno}: negative address {addr}")
        if previous_tick is None:
            gap = 0
        else:
            gap = min(max_gap, (tick - previous_tick) // gap_scale)
        records.append((gap, is_write, addr // block_bytes))
        previous_tick = tick
    if not records:
        raise ValueError(f"{name}: no records (empty or comment-only trace)")
    return Trace(name=name, records=records)


def detect_format(path: str) -> str:
    """``"dbitrace"`` for native containers, ``"gem5"`` for text traces."""
    with open(path, "rb") as handle:
        head = handle.read(len(MAGIC))
    return "dbitrace" if head == MAGIC else "gem5"


def load_registry(registry_dir: str) -> Dict:
    path = os.path.join(registry_dir, REGISTRY_NAME)
    if not os.path.exists(path):
        return {"format": REGISTRY_FORMAT, "traces": {}}
    with open(path, "r", encoding="utf-8") as handle:
        registry = json.load(handle)
    if registry.get("format") != REGISTRY_FORMAT:
        raise ValueError(
            f"{path}: unsupported registry format {registry.get('format')!r}"
        )
    if not isinstance(registry.get("traces"), dict):
        raise ValueError(f"{path}: malformed registry (no traces mapping)")
    return registry


def ingest_trace(
    source: str,
    registry_dir: str,
    name: Optional[str] = None,
    fmt: str = "auto",
    block_bytes: int = 64,
    gap_scale: int = DEFAULT_GAP_SCALE,
    max_gap: int = DEFAULT_MAX_GAP,
) -> Dict:
    """Validate ``source``, convert it, and register it under ``name``.

    Returns the registry entry. The DBITRACE bytes are the identity: the
    manifest pins their sha256, and campaign resume refuses the trace if
    the file on disk no longer hashes to the registered digest.
    """
    if name is None:
        name = os.path.splitext(os.path.basename(source))[0]
    if not _NAME_RE.match(name):
        raise ValueError(
            f"trace name {name!r} is not registrable; use letters, digits, "
            "dot, underscore or dash (it becomes a campaign cell id)"
        )
    if fmt == "auto":
        fmt = detect_format(source)
    if fmt == "dbitrace":
        trace = load_trace(source)  # full validation pass
        trace = Trace(name=name, records=trace.records)
    elif fmt == "gem5":
        with open(source, "r", encoding="utf-8") as handle:
            trace = parse_gem5_trace(
                handle, name,
                block_bytes=block_bytes,
                gap_scale=gap_scale,
                max_gap=max_gap,
            )
    else:
        raise ValueError(
            f"unknown trace format {fmt!r} (choose auto, gem5 or dbitrace)"
        )

    os.makedirs(registry_dir, exist_ok=True)
    filename = f"{name}.dbitrace"
    final_path = os.path.join(registry_dir, filename)
    staging = f"{final_path}.staging.{os.getpid()}"
    try:
        save_trace(trace, staging)
        os.replace(staging, final_path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise

    entry = {
        "file": filename,
        "sha256": file_sha256(final_path),
        "records": len(trace.records),
        "source": os.path.basename(source),
        "source_format": fmt,
    }
    registry = load_registry(registry_dir)
    registry["traces"][name] = entry
    atomic_write_json(
        os.path.join(registry_dir, REGISTRY_NAME),
        registry, indent=2, sort_keys=True,
    )
    return entry


def registered_trace(
    registry_dir: str, name: str, expect_sha: Optional[str] = None
) -> Trace:
    """Load a registered trace, refusing silent drift.

    Verifies the on-disk bytes against the registry's sha256 and, when the
    caller pinned one (campaign cells do), against ``expect_sha`` as well.
    """
    registry = load_registry(registry_dir)
    entry = registry["traces"].get(name)
    if entry is None:
        raise ValueError(
            f"trace {name!r} is not registered in {registry_dir} "
            f"(registered: {sorted(registry['traces']) or 'none'})"
        )
    if expect_sha is not None and entry["sha256"] != expect_sha:
        raise ValueError(
            f"trace {name!r}: registry sha {entry['sha256'][:12]} does not "
            f"match the campaign's pinned sha {expect_sha[:12]}; the trace "
            "was re-ingested since the campaign was planned"
        )
    path = os.path.join(registry_dir, entry["file"])
    actual = file_sha256(path)
    if actual != entry["sha256"]:
        raise ValueError(
            f"{path}: trace bytes drifted (sha {actual[:12]} != registered "
            f"{entry['sha256'][:12]}); re-ingest the source"
        )
    return load_trace(path)
