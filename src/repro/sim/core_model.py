"""Approximate out-of-order core model.

Single issue (paper Table 1), a ``window``-entry instruction window and
out-of-order completion with in-order retirement, approximated as:

* non-memory instructions issue 1/cycle and never stall;
* loads issue without blocking and complete whenever the hierarchy answers —
  independent loads overlap (memory-level parallelism);
* issue stalls when a load older than ``window`` instructions is still
  outstanding (the window is full of unretired work), or when
  ``max_outstanding_loads`` (the L1 MSHRs) are in flight;
* stores retire through a store buffer: they never stall issue, but they do
  send real write-allocate traffic into the hierarchy.

IPC is recorded the first time the core commits ``instruction_limit``
instructions; afterwards the core keeps replaying its trace so a multi-core
simulation retains its memory contention until every core has been measured
(the standard multi-programmed methodology).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Optional

from repro.sim.trace import Trace
from repro.utils.events import EventQueue
from repro.utils.stats import StatGroup


class OooCore:
    """Trace-driven core front-end attached to a cache hierarchy."""

    def __init__(
        self,
        core_id: int,
        queue: EventQueue,
        hierarchy,
        trace: Trace,
        instruction_limit: int,
        window: int = 128,
        max_outstanding_loads: int = 32,
        on_measured: Optional[Callable[["OooCore"], None]] = None,
        warmup_instructions: int = 0,
        on_warmed: Optional[Callable[["OooCore"], None]] = None,
    ) -> None:
        if instruction_limit <= 0:
            raise ValueError("instruction_limit must be positive")
        if not 0 <= warmup_instructions < instruction_limit:
            raise ValueError(
                "warmup_instructions must be in [0, instruction_limit)"
            )
        if not trace.records:
            raise ValueError(f"trace {trace.name!r} is empty")
        self.core_id = core_id
        self.queue = queue
        self.hierarchy = hierarchy
        self.trace = trace
        self.instruction_limit = instruction_limit
        self.window = window
        self.max_outstanding_loads = max_outstanding_loads
        self.on_measured = on_measured
        self.warmup_instructions = warmup_instructions
        self.on_warmed = on_warmed
        self.warmed = warmup_instructions == 0
        self._measure_start_cycle = 0
        self.stats = StatGroup(f"core{core_id}")
        # Per-instruction counters, bound lazily (see Cache for rationale).
        self._c_loads = None
        self._c_stores = None
        self._c_window_stalls = None
        self._c_mshr_stalls = None
        self._d_load_latency = None

        self._records = trace.records
        self._pos = 0
        self._issue_time = 0  # cycle the next instruction may issue
        self._instr_count = 0  # instructions issued so far
        self._outstanding: Dict[int, int] = {}  # instr index -> issue cycle
        self._waiting = False  # blocked on a load completion
        self._advance_scheduled = False
        self._paused = False  # checkpoint quiesce: issue nothing new
        self.keep_running = True  # cleared by the System once all measured

        self.measured_ipc: Optional[float] = None
        self.measured_cycles: Optional[int] = None
        self.finished = False  # stopped issuing entirely

    # ------------------------------------------------------------- control

    def start(self) -> None:
        self._schedule_advance(self.queue.now)

    def stop(self) -> None:
        """Stop issuing new work (in-flight loads still drain)."""
        self.keep_running = False
        self.finished = True

    def pause(self) -> None:
        """Suspend issue so in-flight traffic can drain (checkpoint quiesce).

        Pending advance events still fire but return without issuing; loads
        that complete while paused do not reschedule the front-end.
        """
        self._paused = True

    def unpause(self) -> None:
        """Resume issue after :meth:`pause` (no-op if never paused)."""
        if not self._paused:
            return
        self._paused = False
        if not self.finished:
            self._schedule_advance(self.queue.now)

    # ------------------------------------------------------------ mainloop

    def _schedule_advance(self, when: int) -> None:
        if self._advance_scheduled or self.finished:
            return
        self._advance_scheduled = True
        self.queue.schedule(max(when, self.queue.now), self._advance_event)

    def _advance_event(self) -> None:
        self._advance_scheduled = False
        self._advance()

    def _advance(self) -> None:
        if self._paused:
            return
        while not self.finished:
            gap, is_write, addr = self._records[self._pos]
            mem_instr_index = self._instr_count + gap
            issue_at = self._issue_time + gap

            # Window full: the oldest unfinished load blocks retirement of
            # everything behind it, so issue must wait for it.
            if self._outstanding:
                oldest = min(self._outstanding)
                if oldest <= mem_instr_index - self.window:
                    self._waiting = True
                    counter = self._c_window_stalls
                    if counter is None:
                        counter = self._c_window_stalls = self.stats.counter(
                            "window_stalls"
                        )
                    counter.value += 1
                    return
            if (
                not is_write
                and len(self._outstanding) >= self.max_outstanding_loads
            ):
                self._waiting = True
                counter = self._c_mshr_stalls
                if counter is None:
                    counter = self._c_mshr_stalls = self.stats.counter(
                        "mshr_stalls"
                    )
                counter.value += 1
                return

            if issue_at > self.queue.now:
                self._schedule_advance(issue_at)
                return

            # Issue the memory operation now.
            issue_cycle = max(issue_at, self.queue.now)
            self._pos += 1
            if self._pos >= len(self._records):
                self._pos = 0  # replay the trace
            self._instr_count = mem_instr_index + 1
            self._issue_time = issue_cycle + 1

            if is_write:
                counter = self._c_stores
                if counter is None:
                    counter = self._c_stores = self.stats.counter("stores")
                counter.value += 1
                self.hierarchy.store(self.core_id, addr)
            else:
                counter = self._c_loads
                if counter is None:
                    counter = self._c_loads = self.stats.counter("loads")
                counter.value += 1
                index = mem_instr_index
                hit = self.hierarchy.load(
                    self.core_id, addr, partial(self._load_done_cb, index)
                )
                if not hit:
                    self._outstanding[index] = issue_cycle

            if not self.warmed and self._instr_count >= self.warmup_instructions:
                self.warmed = True
                self._measure_start_cycle = self.queue.now
                if self.on_warmed is not None:
                    self.on_warmed(self)

            if self._instr_count >= self.instruction_limit:
                self._maybe_record()
                if self.finished:
                    return

    # --------------------------------------------------------- completions

    def _load_done_cb(self, instr_index: int, _addr: int) -> None:
        """Fill-callback shape (addr-taking, picklable) over :meth:`_load_done`."""
        self._load_done(instr_index)

    def _load_done(self, instr_index: int) -> None:
        issue_cycle = self._outstanding.pop(instr_index, None)
        if issue_cycle is not None:
            dist = self._d_load_latency
            if dist is None:
                dist = self._d_load_latency = self.stats.distribution(
                    "load_latency"
                )
            dist.record(self.queue.now - issue_cycle)
        if self.measured_ipc is None and self._instr_count >= self.instruction_limit:
            self._maybe_record()
        if self._waiting and not self.finished:
            self._waiting = False
            self._schedule_advance(self.queue.now)

    def _maybe_record(self) -> None:
        """Record IPC once every pre-limit instruction has retired.

        Loads issued beyond the limit (the core runs ahead out-of-order and,
        in multi-core runs, keeps replaying for contention) must not delay
        the measurement.
        """
        if self.measured_ipc is not None:
            return
        if any(index < self.instruction_limit for index in self._outstanding):
            return  # retirement of measured instructions still pending
        finish_time = max(self.queue.now, self._issue_time)
        measured_instructions = self.instruction_limit - self.warmup_instructions
        self.measured_cycles = max(1, finish_time - self._measure_start_cycle)
        self.measured_ipc = measured_instructions / self.measured_cycles
        self.stats.counter("instructions_measured").increment(measured_instructions)
        if self.on_measured is not None:
            self.on_measured(self)
        if not self.keep_running:
            self.finished = True

    @property
    def instructions_issued(self) -> int:
        return self._instr_count

    @property
    def outstanding_loads(self) -> int:
        return len(self._outstanding)
