"""Three-level cache hierarchy plumbing (paper Table 1).

Private L1 and L2 caches per core are modelled latency-only (the paper's
contention story plays out at the shared LLC); the LLC is driven by a
pluggable mechanism that owns the tag port and the memory interface.

Data-flow rules:

* loads: L1 → L2 → LLC mechanism → memory; fills propagate back and wake the
  core. L1 hits complete synchronously (returned as ``True``) so the common
  case does not cost simulator events.
* stores: write-allocate at the L1; a store miss fetches the block through
  the normal path and dirties it on fill. Store latency never blocks the
  core (store buffer), but the traffic is real.
* writebacks cascade: a dirty L1 victim updates/installs in the L2; a dirty
  L2 victim becomes a *writeback request* to the LLC mechanism — which is
  exactly the event the paper's DBI observes (Section 2.2.2).

The hierarchy is non-inclusive, as in the paper.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.mshr import MshrFile
from repro.utils.events import EventQueue
from repro.utils.stats import StatGroup


class Hierarchy:
    """Private L1/L2 levels in front of a shared, mechanism-driven LLC."""

    def __init__(
        self,
        queue: EventQueue,
        num_cores: int,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        mechanism,
    ) -> None:
        self.queue = queue
        self.num_cores = num_cores
        self.mechanism = mechanism
        self.l1s: List[Cache] = []
        self.l2s: List[Cache] = []
        self.l1_mshrs: List[MshrFile] = []
        self.core_stats: List[StatGroup] = []
        for core in range(num_cores):
            # Per-core stat names: with the shared config name, core 1's
            # "l1.*" keys would clobber core 0's in the flattened result.
            self.l1s.append(Cache(l1_config, stat_name=f"l1_core{core}"))
            self.l2s.append(Cache(l2_config, stat_name=f"l2_core{core}"))
            # Same-block merging; capacity is enforced at the core model
            # (max_outstanding_loads), keeping the two coupled but deadlock-free.
            self.l1_mshrs.append(MshrFile(capacity=0, name=f"l1mshr{core}"))
            self.core_stats.append(StatGroup(f"hier_core{core}"))
        self._l1_config = l1_config
        self._l2_config = l2_config
        # Per-(core, stat) counters, bound on first use so the per-access
        # paths skip the StatGroup name lookup; lazy so the exported stat
        # set stays byte-identical to creation-on-first-increment.
        self._bound: List[dict] = [{} for _ in range(num_cores)]

    def _count(self, core_id: int, name: str) -> None:
        bound = self._bound[core_id]
        counter = bound.get(name)
        if counter is None:
            counter = bound[name] = self.core_stats[core_id].counter(name)
        counter.value += 1

    # ------------------------------------------------------------- loads

    def load(self, core_id: int, addr: int, on_complete: Callable[[int], None]) -> bool:
        """Issue a load. Returns True iff it hit in the L1 (synchronous)."""
        l1 = self.l1s[core_id]
        if l1.lookup(addr, core_id):
            self._count(core_id, "l1_hits")
            return True
        self._count(core_id, "l1_misses")
        self._miss_to_l2(core_id, addr, on_complete)
        return False

    def _miss_to_l2(
        self, core_id: int, addr: int, on_fill: Callable[[int], None]
    ) -> None:
        mshr = self.l1_mshrs[core_id]
        is_new_miss = mshr.allocate(addr, on_fill)
        if not is_new_miss:
            return  # merged with an in-flight miss to the same block
        self.queue.schedule_after(
            self._l1_config.miss_detect_latency,
            partial(self._access_l2, core_id, addr),
        )

    def _access_l2(self, core_id: int, addr: int) -> None:
        l2 = self.l2s[core_id]
        if l2.lookup(addr, core_id):
            self._count(core_id, "l2_hits")
            self.queue.schedule_after(
                self._l2_config.hit_latency,
                partial(self._fill_l1, core_id, addr),
            )
            return
        self._count(core_id, "l2_misses")
        self.queue.schedule_after(
            self._l2_config.miss_detect_latency,
            partial(self._read_llc, core_id, addr),
        )

    def _read_llc(self, core_id: int, addr: int) -> None:
        self._count(core_id, "llc_reads")
        self.mechanism.read(core_id, addr, partial(self._llc_data, core_id))

    def _llc_data(self, core_id: int, addr: int) -> None:
        self._fill_l2(core_id, addr)
        self._fill_l1(core_id, addr)

    # -------------------------------------------------------------- fills

    def _fill_l2(self, core_id: int, addr: int) -> None:
        evicted = self.l2s[core_id].insert(addr, core_id=core_id, dirty=False)
        if evicted is not None and evicted.dirty:
            self._count(core_id, "l2_writebacks")
            self.mechanism.writeback(core_id, evicted.addr)

    def _fill_l1(self, core_id: int, addr: int) -> None:
        evicted = self.l1s[core_id].insert(addr, core_id=core_id, dirty=False)
        if evicted is not None and evicted.dirty:
            self._writeback_to_l2(core_id, evicted.addr)
        mshr = self.l1_mshrs[core_id]
        if mshr.outstanding(addr):
            mshr.complete(addr)

    def _writeback_to_l2(self, core_id: int, addr: int) -> None:
        """A dirty L1 victim lands in the L2 (writeback-allocate)."""
        self._count(core_id, "l1_writebacks")
        l2 = self.l2s[core_id]
        if l2.contains(addr):
            l2.mark_dirty(addr)
            l2.touch(addr, core_id)
            return
        evicted = l2.insert(addr, core_id=core_id, dirty=True)
        if evicted is not None and evicted.dirty:
            self._count(core_id, "l2_writebacks")
            self.mechanism.writeback(core_id, evicted.addr)

    # -------------------------------------------------------------- stores

    def store(self, core_id: int, addr: int) -> None:
        """Write-allocate store; never blocks the core (store buffer)."""
        l1 = self.l1s[core_id]
        if l1.lookup(addr, core_id):
            self._count(core_id, "store_hits")
            l1.mark_dirty(addr)
            return
        self._count(core_id, "store_misses")
        self._miss_to_l2(core_id, addr, partial(self._store_fill, core_id))

    def _store_fill(self, core_id: int, addr: int) -> None:
        """A store-miss fill arrived: the allocated L1 block becomes dirty."""
        self.l1s[core_id].mark_dirty(addr)

    # ---------------------------------------------------------- inspection

    def is_idle(self) -> bool:
        """No fills in flight anywhere (end-of-run check)."""
        return all(len(mshr) == 0 for mshr in self.l1_mshrs) and self.mechanism.is_idle()
