"""Compact on-disk trace format.

Traces regenerate deterministically from profiles, but saving them is useful
for sharing exact workloads, diffing runs, or importing externally collected
(Pin-style) traces. The format is a small binary container:

* header: magic ``DBITRACE``, version, name, record count;
* records: per-record varints — gap, flags (bit 0 = write), address delta
  (zig-zag encoded against the previous address). Delta + varint coding
  shrinks streaming traces to ~3 bytes/record.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Union

from repro.sim.trace import Trace

MAGIC = b"DBITRACE"
VERSION = 1

#: Longest accepted varint: 10 × 7 payload bits = 70 bits, enough for any
#: zig-zagged 64-bit address delta. A continuation bit past this is corrupt
#: data (or an adversarial unbounded-length stream), not a bigger number.
_MAX_VARINT_BYTES = 10


def _read_exact(data: BinaryIO, size: int, what: str) -> bytes:
    """Read exactly ``size`` bytes or raise the documented ``ValueError``.

    Bare ``data.read(n)`` returns *up to* n bytes: a truncated header would
    otherwise surface as ``struct.error`` (undocumented) or, worse, decode a
    short name silently.
    """
    blob = data.read(size)
    if len(blob) != size:
        raise ValueError(
            f"truncated {what}: wanted {size} bytes, got {len(blob)}"
        )
    return blob


def _write_varint(out: BinaryIO, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(data: BinaryIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = data.read(1)
        if not raw:
            raise ValueError("truncated varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift >= 7 * _MAX_VARINT_BYTES:
            raise ValueError(
                f"varint longer than {_MAX_VARINT_BYTES} bytes (corrupt stream)"
            )


def _zigzag(value: int) -> int:
    # Python ints are unbounded, so the C idiom ``(v << 1) ^ (v >> 63)``
    # would corrupt non-negative values >= 2**63 (their arithmetic shift is
    # non-zero). Branch on sign instead; decode-compatible with _unzigzag.
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def save_trace(trace: Trace, path: Union[str, Path]) -> int:
    """Write ``trace`` to ``path``; returns the byte size written."""
    buffer = io.BytesIO()
    buffer.write(MAGIC)
    buffer.write(struct.pack("<H", VERSION))
    name_bytes = trace.name.encode("utf-8")
    buffer.write(struct.pack("<H", len(name_bytes)))
    buffer.write(name_bytes)
    buffer.write(struct.pack("<Q", len(trace.records)))
    previous_addr = 0
    for gap, is_write, addr in trace.records:
        _write_varint(buffer, gap)
        buffer.write(bytes((1 if is_write else 0,)))
        _write_varint(buffer, _zigzag(addr - previous_addr))
        previous_addr = addr
    blob = buffer.getvalue()
    Path(path).write_bytes(blob)
    return len(blob)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        ValueError: on a bad magic number, version, or truncated stream.
    """
    data = io.BytesIO(Path(path).read_bytes())
    if data.read(len(MAGIC)) != MAGIC:
        raise ValueError(f"{path}: not a DBITRACE file")
    (version,) = struct.unpack("<H", _read_exact(data, 2, "version field"))
    if version != VERSION:
        raise ValueError(f"{path}: unsupported version {version}")
    (name_len,) = struct.unpack("<H", _read_exact(data, 2, "name length"))
    name = _read_exact(data, name_len, "trace name").decode("utf-8")
    (count,) = struct.unpack("<Q", _read_exact(data, 8, "record count"))
    records = []
    previous_addr = 0
    for _ in range(count):
        gap = _read_varint(data)
        flag = data.read(1)
        if not flag:
            raise ValueError(f"{path}: truncated record stream")
        addr = previous_addr + _unzigzag(_read_varint(data))
        if addr < 0:
            raise ValueError(f"{path}: negative address after delta decode")
        records.append((gap, bool(flag[0] & 1), addr))
        previous_addr = addr
    return Trace(name=name, records=records)
