"""Event-driven timing simulator.

Ties the substrates together into the paper's system (Table 1): per-core
out-of-order cores and private L1/L2 caches, a shared LLC driven by a
pluggable mechanism (`repro.mechanisms`), and a DDR3 memory controller
(`repro.dram`).

The core model is approximate out-of-order: single-issue, a 128-entry
instruction window, loads overlap freely (memory-level parallelism) until
the window or the L1 MSHRs fill, in-order retirement. This reproduces how
write-induced memory interference translates into core stalls without
simulating a full pipeline.
"""

from repro.sim.core_model import OooCore
from repro.sim.hierarchy import Hierarchy
from repro.sim.metrics import (
    harmonic_speedup,
    instruction_throughput,
    maximum_slowdown,
    weighted_speedup,
)
from repro.sim.system import SimulationResult, System, SystemConfig, run_system
from repro.sim.trace import Trace, TraceRecord
from repro.sim.tracefile import load_trace, save_trace

__all__ = [
    "OooCore",
    "Hierarchy",
    "System",
    "SystemConfig",
    "SimulationResult",
    "run_system",
    "Trace",
    "TraceRecord",
    "load_trace",
    "save_trace",
    "weighted_speedup",
    "harmonic_speedup",
    "instruction_throughput",
    "maximum_slowdown",
]
