"""Per-component time-share profiling of the event loop.

The event kernel exposes one hook — ``EventQueue.profiler`` — that, when set,
runs every callback through the profiler instead of calling it directly. The
profiler wall-clocks each callback and attributes the time to the component
that owns it (core front-end, hierarchy plumbing, LLC mechanism, tag port,
DRAM controller, …), derived from the callback's defining module.

Profiling is strictly observational: it never touches the queue's clock,
event accounting or any simulator state, so a profiled run produces results
byte-identical to an unprofiled one (``tests/sim/test_profiler.py`` pins
this). When the hook is unset — the default — the kernel pays a single
``is None`` attribute test per event.

Used by the ``repro profile`` CLI subcommand and ``tools/perf_gate.py``.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Tuple

#: Module-prefix → component label, most specific first.
_COMPONENT_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro.sim.core_model", "core"),
    ("repro.sim.hierarchy", "hierarchy"),
    ("repro.cache.port", "llc-port"),
    ("repro.cache", "cache"),
    ("repro.mechanisms", "mechanism"),
    ("repro.dram", "dram"),
    ("repro.core", "dbi"),
    ("repro.check", "check"),
    ("repro.sim", "sim"),
)


def component_of(module: str) -> str:
    """Map a callback's defining module to a component label."""
    for prefix, label in _COMPONENT_PREFIXES:
        if module.startswith(prefix):
            return label
    return "other"


class SimProfiler:
    """Aggregates per-callback-site wall time; attach via ``queue.profiler``.

    Example:
        >>> from repro.utils.events import EventQueue
        >>> queue = EventQueue()
        >>> profiler = SimProfiler()
        >>> queue.profiler = profiler
        >>> _ = queue.schedule(1, lambda: None)
        >>> queue.run()
        >>> profiler.calls
        1
    """

    def __init__(self) -> None:
        # (module, qualname) -> [calls, seconds]
        self._sites: Dict[Tuple[str, str], List[float]] = {}
        self.calls = 0
        self.seconds = 0.0

    def __call__(self, callback: Callable[[], None]) -> None:
        t0 = _time.perf_counter()
        try:
            callback()
        finally:
            elapsed = _time.perf_counter() - t0
            key = (
                getattr(callback, "__module__", None) or "?",
                getattr(callback, "__qualname__", None) or repr(callback),
            )
            site = self._sites.get(key)
            if site is None:
                self._sites[key] = [1, elapsed]
            else:
                site[0] += 1
                site[1] += elapsed
            self.calls += 1
            self.seconds += elapsed

    # ------------------------------------------------------------ reporting

    def component_shares(self) -> Dict[str, Tuple[int, float]]:
        """``{component: (calls, seconds)}`` aggregated over callback sites."""
        shares: Dict[str, List[float]] = {}
        for (module, _qualname), (calls, seconds) in self._sites.items():
            label = component_of(module)
            entry = shares.setdefault(label, [0, 0.0])
            entry[0] += calls
            entry[1] += seconds
        return {
            label: (int(calls), seconds)
            for label, (calls, seconds) in shares.items()
        }

    def top_sites(self, limit: int = 10) -> List[Tuple[str, int, float]]:
        """The costliest callback sites: ``(site, calls, seconds)``."""
        rows = [
            (f"{module}:{qualname}", int(calls), seconds)
            for (module, qualname), (calls, seconds) in self._sites.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:limit]

    def to_dict(self, wall_seconds: Optional[float] = None) -> Dict:
        """Plain-data report (the ``repro profile --json`` payload)."""
        total = self.seconds or 1e-12
        return {
            "events_profiled": self.calls,
            "callback_seconds": self.seconds,
            "wall_seconds": wall_seconds,
            "components": {
                label: {
                    "calls": calls,
                    "seconds": seconds,
                    "share": seconds / total,
                }
                for label, (calls, seconds) in sorted(
                    self.component_shares().items(),
                    key=lambda item: -item[1][1],
                )
            },
            "top_sites": [
                {"site": site, "calls": calls, "seconds": seconds}
                for site, calls, seconds in self.top_sites()
            ],
        }

    def to_text(self, wall_seconds: Optional[float] = None) -> str:
        """Human-readable time-share table."""
        lines = []
        total = self.seconds or 1e-12
        lines.append(
            f"profiled {self.calls} callbacks, "
            f"{self.seconds:.3f}s inside callbacks"
            + (f" ({wall_seconds:.3f}s wall)" if wall_seconds is not None else "")
        )
        lines.append(f"{'component':<12} {'calls':>10} {'seconds':>9} {'share':>7}")
        for label, (calls, seconds) in sorted(
            self.component_shares().items(), key=lambda item: -item[1][1]
        ):
            lines.append(
                f"{label:<12} {calls:>10} {seconds:>9.3f} {seconds / total:>6.1%}"
            )
        lines.append("")
        lines.append("top callback sites:")
        for site, calls, seconds in self.top_sites():
            lines.append(f"  {seconds:>8.3f}s {calls:>9} calls  {site}")
        return "\n".join(lines)
