"""Full-system builder and run loop.

:class:`SystemConfig` captures every knob of paper Table 1 plus the scaled
run length; :class:`System` wires cores, hierarchy, mechanism and memory to
one event queue and runs until every core has been measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.cache.cache import Cache
from repro.cache.config import (
    CacheConfig,
    paper_l1_config,
    paper_l2_config,
    paper_llc_config,
)
from repro.cache.port import TagPort
from repro.core.config import DbiConfig
from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dramcache.config import DramCacheConfig
from repro.dramcache.level import DramCacheLevel
from repro.mechanisms.registry import llc_replacement_for, make_mechanism
from repro.sim.core_model import OooCore
from repro.sim.hierarchy import Hierarchy
from repro.sim.trace import Trace
from repro.utils.events import EventQueue
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class SystemConfig:
    """Knobs of one simulation (defaults follow paper Table 1).

    ``instruction_limit`` is per core; ``None`` measures each core over one
    full pass of its trace.
    """

    num_cores: int = 1
    mechanism: str = "baseline"
    mb_per_core: int = 2
    llc_replacement: Optional[str] = None  # None = Table 2 default
    dbi_alpha: Fraction = Fraction(1, 4)
    dbi_granularity: int = 64
    dbi_replacement: str = "lrw"
    dbi_config: Optional[DbiConfig] = None
    dram: DramConfig = field(default_factory=DramConfig)
    #: Optional die-stacked DRAM-cache level between the LLC and off-chip
    #: DRAM (see :mod:`repro.dramcache`). None = conventional hierarchy.
    dram_cache: Optional[DramCacheConfig] = None
    l1: CacheConfig = field(default_factory=paper_l1_config)
    l2: CacheConfig = field(default_factory=paper_l2_config)
    llc: Optional[CacheConfig] = None
    window: int = 128
    max_outstanding_loads: int = 32
    predictor_epoch_cycles: int = 250_000
    instruction_limit: Optional[int] = None
    #: Fraction of each core's instructions run before statistics reset and
    #: IPC measurement begins (the paper warms 200M of 500M instructions).
    warmup_fraction: float = 0.4
    seed: int = 0xDB1

    def resolve_llc(self) -> CacheConfig:
        """The LLC config, derived from core count if not given explicitly."""
        base = self.llc or paper_llc_config(self.num_cores, self.mb_per_core)
        replacement = llc_replacement_for(self.mechanism, self.llc_replacement)
        if base.replacement == replacement:
            return base
        import dataclasses

        return dataclasses.replace(base, replacement=replacement)


@dataclass
class SimulationResult:
    """Outcome of one run: per-core IPCs plus flattened component stats."""

    mechanism: str
    trace_names: List[str]
    ipc: List[float]
    cycles: List[int]
    instructions: List[int]
    total_instructions_issued: int
    stats: Dict[str, float]
    events_processed: int

    def _per_kilo_instruction(self, count: float) -> float:
        if self.total_instructions_issued == 0:
            return 0.0
        return 1000.0 * count / self.total_instructions_issued

    @property
    def tag_lookups_pki(self) -> float:
        """Figure 6c's metric: LLC tag lookups per kilo-instruction."""
        return self._per_kilo_instruction(self.stats.get("mech.tag_lookups", 0))

    @property
    def memory_wpki(self) -> float:
        """Figure 6d's metric: DRAM writes per kilo-instruction."""
        return self._per_kilo_instruction(
            self.stats.get("dram.dram_writes_performed", 0)
        )

    @property
    def llc_mpki(self) -> float:
        """LLC read misses (including true-miss bypasses) per kilo-instruction.

        A CLB bypass that skipped the tag lookup of a block actually resident
        in the LLC (``mech.bypassed_hits``) is not a miss — the fill path
        re-touches the block and no reload was needed — so it is excluded;
        the paper reports CLB leaves LLC MPKI unchanged (Section 6.1).
        """
        misses = (
            self.stats.get("mech.read_misses", 0)
            + self.stats.get("mech.bypassed_lookups", 0)
            - self.stats.get("mech.bypassed_hits", 0)
        )
        return self._per_kilo_instruction(misses)

    @property
    def write_row_hit_rate(self) -> float:
        """Figure 6b's metric."""
        return self.stats.get("dram.write_row_hit_rate", 0.0)

    def to_dict(self) -> Dict:
        """Plain-data form that round-trips through :meth:`from_dict`.

        Field and stats ordering are preserved, so a result rebuilt from a
        sweep-cache entry serializes byte-identically to the original.
        """
        return {
            "mechanism": self.mechanism,
            "trace_names": list(self.trace_names),
            "ipc": list(self.ipc),
            "cycles": list(self.cycles),
            "instructions": list(self.instructions),
            "total_instructions_issued": self.total_instructions_issued,
            "stats": dict(self.stats),
            "events_processed": self.events_processed,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Rebuild a result stored by :meth:`to_dict` (e.g. a cache entry)."""
        return cls(
            mechanism=data["mechanism"],
            trace_names=list(data["trace_names"]),
            ipc=list(data["ipc"]),
            cycles=list(data["cycles"]),
            instructions=list(data["instructions"]),
            total_instructions_issued=data["total_instructions_issued"],
            stats=dict(data["stats"]),
            events_processed=data["events_processed"],
        )

    def to_json(self) -> str:
        """Full result as JSON (stats flattened; derived metrics included)."""
        import json

        payload = self.to_dict()
        stats = payload.pop("stats")
        payload["derived"] = {
            "tag_lookups_pki": self.tag_lookups_pki,
            "memory_wpki": self.memory_wpki,
            "llc_mpki": self.llc_mpki,
            "write_row_hit_rate": self.write_row_hit_rate,
            "read_row_hit_rate": self.read_row_hit_rate,
        }
        payload["stats"] = stats
        return json.dumps(payload, indent=2)

    @property
    def read_row_hit_rate(self) -> float:
        """Figure 6e's metric."""
        return self.stats.get("dram.read_row_hit_rate", 0.0)


class System:
    """One simulated machine: N cores over a shared LLC and one DRAM channel.

    ``check`` selects runtime verification ("off", "cheap" or "full"; see
    :mod:`repro.check`). ``soft_errors`` attaches a seeded
    :class:`~repro.core.ecc.SoftErrorInjector` that upsets resident LLC
    blocks during the run (the ``repro reliability`` experiment).
    ``profiler`` attaches a per-event time-share hook (see
    :mod:`repro.sim.profiler`). ``telemetry`` attaches an epoch sampler
    (see :mod:`repro.telemetry`) that snapshots stat deltas and gauges
    every ``epoch_cycles``; the sampler object is exposed as
    ``self.telemetry`` after construction. All four are deliberately *not*
    part of :class:`SystemConfig`: they only observe — results are
    byte-identical either way — so sweep-cache keys (derived from the
    config) must not depend on them.
    """

    def __init__(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        check: str = "off",
        soft_errors: Optional["SoftErrorConfig"] = None,
        profiler: Optional["SimProfiler"] = None,
        telemetry: Optional["TelemetryConfig"] = None,
    ) -> None:
        if len(traces) != config.num_cores:
            raise ValueError(
                f"{config.num_cores} cores need {config.num_cores} traces, "
                f"got {len(traces)}"
            )
        self.config = config
        self.traces = list(traces)
        self.queue = EventQueue()
        rng = DeterministicRng(config.seed)

        self.memory = MemoryController(self.queue, config.dram)
        # The DRAM-cache level speaks the controller's interface upward, so
        # the mechanism's "memory" handle is simply rebound to it; nothing
        # above the LLC knows whether the next level is stacked or off-chip.
        self.dram_cache = None
        if config.dram_cache is not None:
            self.dram_cache = DramCacheLevel(
                self.queue,
                config.dram_cache,
                self.memory,
                rng=rng.derive("dramcache-policy"),
            )
        llc_config = config.resolve_llc()
        self.llc = Cache(
            llc_config,
            num_threads=config.num_cores,
            rng=rng.derive("llc-policy"),
        )
        self.port = TagPort(self.queue, occupancy=llc_config.port_occupancy)
        self.mechanism = make_mechanism(
            config.mechanism,
            queue=self.queue,
            llc=self.llc,
            port=self.port,
            memory=self.dram_cache or self.memory,
            mapper=self.memory.mapper,
            num_cores=config.num_cores,
            dbi_config=config.dbi_config,
            dbi_alpha=config.dbi_alpha,
            dbi_granularity=config.dbi_granularity,
            dbi_replacement=config.dbi_replacement,
            predictor_epoch_cycles=config.predictor_epoch_cycles,
            rng=rng.derive("dbi-policy"),
        )
        self.hierarchy = Hierarchy(
            self.queue, config.num_cores, config.l1, config.l2, self.mechanism
        )

        if not 0.0 <= config.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self._measured = 0
        self._warmed = 0
        self._issued_at_reset = 0
        self.cores: List[OooCore] = []
        for core_id, trace in enumerate(self.traces):
            limit = config.instruction_limit or trace.total_instructions
            self.cores.append(
                OooCore(
                    core_id=core_id,
                    queue=self.queue,
                    hierarchy=self.hierarchy,
                    trace=trace,
                    instruction_limit=limit,
                    window=config.window,
                    max_outstanding_loads=config.max_outstanding_loads,
                    on_measured=self._core_measured,
                    warmup_instructions=int(limit * config.warmup_fraction),
                    on_warmed=self._core_warmed,
                )
            )
        self._warmed = sum(1 for core in self.cores if core.warmed)

        self.check_engine = None
        if str(check).lower() != "off":
            # Imported here so unchecked runs never touch the check package.
            from repro.check.engine import CheckEngine, CheckLevel

            self.check_engine = CheckEngine(self, CheckLevel.parse(check))
            self.check_engine.attach()

        self.soft_errors = None
        if soft_errors is not None:
            from repro.core.ecc import SoftErrorInjector

            self.soft_errors = SoftErrorInjector(self, soft_errors)
            self.soft_errors.attach()

        if profiler is not None:
            self.queue.profiler = profiler

        self.telemetry = None
        if telemetry is not None:
            # Imported here so telemetry-free runs never touch the package.
            from repro.telemetry.sampler import TelemetrySampler

            self.telemetry = TelemetrySampler(
                telemetry,
                groups=self._all_stat_groups(),
                counters=self._telemetry_counters(),
                gauges=self._telemetry_gauges(),
            )
            self.queue.telemetry = self.telemetry

    def _telemetry_counters(self):
        """Cumulative-integer probes outside the stat groups.

        These never reset at the warmup boundary, so the sampler's IPC
        series stays meaningful across the whole run (the stat groups all
        zero at ``_core_warmed``).
        """
        probes = [
            (
                "instructions",
                lambda: sum(core.instructions_issued for core in self.cores),
            )
        ]
        for bank in self.memory.banks:
            probes.append(
                (f"dram.bank{bank.bank_id}.row_hits", lambda b=bank: b.row_hits)
            )
            probes.append(
                (
                    f"dram.bank{bank.bank_id}.row_conflicts",
                    lambda b=bank: b.row_conflicts,
                )
            )
        return probes

    def _telemetry_gauges(self):
        """Instantaneous depth/occupancy probes (sampled, never summed)."""
        gauges = [
            ("dram.write_buffer_depth", lambda: len(self.memory.write_buffer)),
            ("dram.read_queue_depth", lambda: len(self.memory.read_queue)),
            ("port.queued", lambda: self.port.queued),
        ]
        for index, mshr in enumerate(self.hierarchy.l1_mshrs):
            gauges.append((f"l1mshr{index}.occupancy", lambda m=mshr: len(m)))
        for name, probe in self.mechanism.telemetry_gauges().items():
            gauges.append((f"mech.{name}", probe))
        if self.dram_cache is not None:
            level = self.dram_cache
            gauges.extend(
                [
                    ("dramcache.occupancy", lambda: level.occupancy),
                    ("dramcache.dirty_blocks", lambda: level.dirty_count),
                    (
                        "dramcache.pending_fills",
                        lambda: len(level._pending_reads),
                    ),
                    (
                        "stacked.write_buffer_depth",
                        lambda: len(level.stacked.write_buffer),
                    ),
                ]
            )
        return gauges

    def _all_stat_groups(self):
        groups = [
            self.mechanism.stats,
            self.memory.stats,
            self.port.stats,
            self.llc.stats,
        ]
        dbi = getattr(self.mechanism, "dbi", None)
        if dbi is not None:
            groups.append(dbi.stats)
        predictor = getattr(self.mechanism, "predictor", None)
        if predictor is not None:
            groups.append(predictor.stats)
        if self.dram_cache is not None:
            groups.extend(self.dram_cache.stat_groups())
        groups.extend(self.hierarchy.core_stats)
        groups.extend(cache.stats for cache in self.hierarchy.l1s)
        groups.extend(cache.stats for cache in self.hierarchy.l2s)
        groups.extend(mshr.stats for mshr in self.hierarchy.l1_mshrs)
        groups.extend(core.stats for core in self.cores)
        return groups

    def _core_warmed(self, _core: OooCore) -> None:
        self._warmed += 1
        if self._warmed == len(self.cores):
            # Measurement window begins: drop all warm-up statistics.
            for group in self._all_stat_groups():
                group.reset()
            self._issued_at_reset = sum(
                core.instructions_issued for core in self.cores
            )

    def _core_measured(self, core: OooCore) -> None:
        self._measured += 1
        if self._measured >= len(self.cores):
            for other in self.cores:
                other.stop()

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Run to completion and collect results.

        Args:
            max_events: optional hard event budget (guards runaway configs).

        Raises:
            RuntimeError: if the budget is exhausted before every core is
                measured, or the queue drains with cores unmeasured.
        """
        for core in self.cores:
            core.start()
        return self.resume(max_events=max_events)

    def resume(self, max_events: Optional[int] = None) -> SimulationResult:
        """Continue an already-started system to completion and collect.

        Unlike :meth:`run` this does not (re)start the cores: a system
        restored from a checkpoint (see :mod:`repro.checkpoint`) already has
        its advance events in the queue, and a second ``start()`` on a
        window-stalled core would schedule a spurious advance.
        """
        self.queue.run(max_events=max_events)
        if self._measured < len(self.cores):
            raise RuntimeError(
                f"simulation ended with {self._measured}/{len(self.cores)} "
                f"cores measured (event budget too small or deadlock)"
            )
        if self.check_engine is not None:
            self.check_engine.finalize()
        if self.telemetry is not None:
            self.telemetry.finalize(self.queue.now)
        return self._collect()

    def _collect(self) -> SimulationResult:
        # Collect exactly the groups that _core_warmed resets: dropping any
        # of them (historically the DBI, predictor, L1/L2 and MSHR groups)
        # silently zeroes their stats for every downstream consumer.
        stats: Dict[str, float] = {}
        for group in self._all_stat_groups():
            stats.update(group.as_dict())
        return SimulationResult(
            mechanism=self.config.mechanism,
            trace_names=[trace.name for trace in self.traces],
            ipc=[core.measured_ipc for core in self.cores],
            cycles=[core.measured_cycles for core in self.cores],
            instructions=[
                core.instruction_limit - core.warmup_instructions
                for core in self.cores
            ],
            total_instructions_issued=max(
                1,
                sum(core.instructions_issued for core in self.cores)
                - self._issued_at_reset,
            ),
            stats=stats,
            events_processed=self.queue.events_processed,
        )


def run_system(
    config: SystemConfig,
    traces: Sequence[Trace],
    max_events: Optional[int] = None,
    check: str = "off",
    soft_errors: Optional["SoftErrorConfig"] = None,
    profiler: Optional["SimProfiler"] = None,
    telemetry: Optional["TelemetryConfig"] = None,
) -> SimulationResult:
    """Convenience one-shot: build a System and run it."""
    system = System(
        config,
        traces,
        check=check,
        soft_errors=soft_errors,
        profiler=profiler,
        telemetry=telemetry,
    )
    return system.run(max_events=max_events)
