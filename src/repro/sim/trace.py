"""Instruction trace format.

A trace is a sequence of memory references, each annotated with the number of
non-memory instructions preceding it — the standard compressed format for
cache-hierarchy studies (the paper collects equivalent traces with
Pinpoints [38]). Records are plain tuples on the hot path; :class:`Trace`
wraps them with metadata and integrity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

#: (non-memory instruction gap, is_write, block address)
TraceRecord = Tuple[int, bool, int]


@dataclass
class Trace:
    """A named instruction trace.

    Attributes:
        name: workload label (e.g. "mcf"); used in reports.
        records: (gap, is_write, block_addr) tuples.
    """

    name: str
    records: List[TraceRecord]

    def __post_init__(self) -> None:
        for i, (gap, is_write, addr) in enumerate(self.records):
            if gap < 0:
                raise ValueError(f"record {i}: negative gap {gap}")
            if addr < 0:
                raise ValueError(f"record {i}: negative address {addr}")
            if not isinstance(is_write, bool):
                raise ValueError(f"record {i}: is_write must be bool")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def total_instructions(self) -> int:
        """Instructions represented: every gap plus one per memory op."""
        return sum(gap for gap, _w, _a in self.records) + len(self.records)

    @property
    def memory_references(self) -> int:
        return len(self.records)

    @property
    def write_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for _g, w, _a in self.records if w) / len(self.records)

    @property
    def footprint_blocks(self) -> int:
        """Distinct blocks touched."""
        return len({addr for _g, _w, addr in self.records})

    def mpki_upper_bound(self) -> float:
        """Memory references per kilo-instruction (an MPKI ceiling)."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self.records) / instructions


def merge_traces(name: str, traces: Sequence[Trace]) -> Trace:
    """Concatenate traces (utility for building long workloads)."""
    records: List[TraceRecord] = []
    for trace in traces:
        records.extend(trace.records)
    return Trace(name=name, records=records)
