"""repro-dbi: a reproduction of "The Dirty-Block Index" (ISCA 2014).

Public API map
==============

The contribution (paper Section 2):
    :class:`repro.core.DirtyBlockIndex`, :class:`repro.core.DbiConfig`

The evaluated mechanisms (paper Table 2):
    :func:`repro.mechanisms.make_mechanism` with names ``baseline``,
    ``tadip``, ``dawb``, ``vwq``, ``skipcache``, ``dbi``, ``dbi+awb``,
    ``dbi+clb``, ``dbi+awb+clb``.

Running systems:
    :class:`repro.sim.SystemConfig`, :func:`repro.sim.run_system`,
    :mod:`repro.workloads` for traces and mixes,
    :mod:`repro.analysis` for per-figure experiment runners.

Area/storage models (paper Tables 4-5):
    :mod:`repro.area`.
"""

from repro.core import DbiConfig, DirtyBlockIndex
from repro.sim import SimulationResult, SystemConfig, run_system

__version__ = "1.0.0"

__all__ = [
    "DbiConfig",
    "DirtyBlockIndex",
    "SystemConfig",
    "SimulationResult",
    "run_system",
    "__version__",
]
