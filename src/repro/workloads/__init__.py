"""Synthetic workload generation.

The paper evaluates SPEC CPU2006 + STREAM traces collected with Pinpoints.
Neither the binaries nor the traces are available offline, so this package
generates deterministic synthetic traces whose *profiles* (footprint, write
fraction, access pattern, compute density) put each named workload in the
same qualitative regime the paper's Figure 6 shows — see DESIGN.md for the
substitution rationale.

* :mod:`repro.workloads.synthetic` — address-pattern primitives
  (streaming, random, hot/cold, cyclic scans, region bursts).
* :mod:`repro.workloads.spec` — named profiles ("mcf", "lbm", ...) and
  :func:`spec_trace` to render one into a trace.
* :mod:`repro.workloads.mix` — multi-programmed mixes balanced over the
  paper's read-intensity × write-intensity categories (Section 5).
"""

from repro.workloads.mix import WorkloadMix, category_mixes, make_mix
from repro.workloads.spec import (
    SPEC_PROFILES,
    BenchmarkProfile,
    generate_trace,
    profile_names,
    spec_trace,
)
from repro.workloads.synthetic import AddressPattern, make_pattern

__all__ = [
    "AddressPattern",
    "make_pattern",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "generate_trace",
    "profile_names",
    "spec_trace",
    "WorkloadMix",
    "make_mix",
    "category_mixes",
]
