"""Address-pattern primitives for synthetic traces.

Each pattern is a stateful generator of block addresses inside a fixed
footprint. The patterns are chosen to span the behaviours that matter for
the paper's mechanisms:

* ``stream`` — sequential scans: high spatial (DRAM-row) locality for both
  reads and writes; AWB's best case.
* ``cyclic`` — an exact repeating scan of the footprint: the LRU-thrash
  pattern DIP/BIP is designed for.
* ``random`` — uniform references: low row locality, scattered writes;
  DBI-thrash stressor.
* ``hotcold`` — a small hot set absorbs most references; models reuse-heavy
  benchmarks with low MPKI.
* ``region`` — bursts of accesses within one DRAM-row-sized region before
  jumping: moderate row locality with working-set churn.
"""

from __future__ import annotations

from repro.utils.rng import DeterministicRng
from repro.utils.validation import check_positive, check_range


class AddressPattern:
    """Base class: next_address() yields the next block address."""

    def __init__(self, rng: DeterministicRng, footprint: int) -> None:
        check_positive("footprint", footprint)
        self.rng = rng
        self.footprint = footprint

    def next_address(self) -> int:
        raise NotImplementedError


class StreamPattern(AddressPattern):
    """Sequential scan with a stride, wrapping at the footprint."""

    def __init__(self, rng, footprint, stride: int = 1) -> None:
        super().__init__(rng, footprint)
        check_positive("stride", stride)
        self.stride = stride
        self._cursor = 0

    def next_address(self) -> int:
        addr = self._cursor
        self._cursor = (self._cursor + self.stride) % self.footprint
        return addr


class CyclicPattern(StreamPattern):
    """Alias of a stride-1 stream: an exact repeating scan (LRU's nemesis)."""

    def __init__(self, rng, footprint) -> None:
        super().__init__(rng, footprint, stride=1)


class RandomPattern(AddressPattern):
    """Uniform random references over the footprint."""

    def next_address(self) -> int:
        return self.rng.randint(0, self.footprint - 1)


class HotColdPattern(AddressPattern):
    """A hot subset absorbs most references; the rest scatter."""

    def __init__(
        self,
        rng,
        footprint,
        hot_fraction: float = 0.1,
        hot_probability: float = 0.9,
    ) -> None:
        super().__init__(rng, footprint)
        check_range("hot_fraction", hot_fraction, 0.0, 1.0)
        check_range("hot_probability", hot_probability, 0.0, 1.0)
        self.hot_blocks = max(1, int(footprint * hot_fraction))
        self.hot_probability = hot_probability

    def next_address(self) -> int:
        if self.rng.chance(self.hot_probability):
            return self.rng.randint(0, self.hot_blocks - 1)
        return self.rng.randint(0, self.footprint - 1)


class RegionBurstPattern(AddressPattern):
    """Bursts of references within one region, then a jump elsewhere.

    ``region_blocks`` should match a DRAM row (128 blocks for the paper's
    8 KB rows) to model row-local phases.
    """

    def __init__(
        self,
        rng,
        footprint,
        region_blocks: int = 128,
        burst_length: int = 24,
        revisit: str = "random",
    ) -> None:
        super().__init__(rng, footprint)
        check_positive("region_blocks", region_blocks)
        check_positive("burst_length", burst_length)
        if revisit not in ("random", "cycle"):
            raise ValueError(f"revisit must be 'random' or 'cycle', got {revisit!r}")
        self.region_blocks = min(region_blocks, footprint)
        self.burst_length = burst_length
        self.revisit = revisit
        self._remaining = 0
        self._region_base = 0
        num_regions = max(1, self.footprint // self.region_blocks)
        self._num_regions = num_regions
        if revisit == "cycle":
            # A shuffled cyclic order: consecutive bursts hit unrelated
            # regions (rows), but a region is revisited only after a full
            # pass over the footprint — array codes that sweep their data.
            self._order = list(range(num_regions))
            self.rng.shuffle(self._order)
            self._cursor = 0

    def _next_region(self) -> int:
        if self.revisit == "cycle":
            region = self._order[self._cursor]
            self._cursor = (self._cursor + 1) % self._num_regions
            return region
        return self.rng.randint(0, self._num_regions - 1)

    def next_address(self) -> int:
        if self._remaining == 0:
            self._region_base = self._next_region() * self.region_blocks
            self._remaining = self.burst_length
        self._remaining -= 1
        offset = self.rng.randint(0, self.region_blocks - 1)
        return min(self._region_base + offset, self.footprint - 1)


def make_pattern(
    kind: str,
    rng: DeterministicRng,
    footprint: int,
    **kwargs,
) -> AddressPattern:
    """Factory over the pattern names used by benchmark profiles."""
    key = kind.lower()
    if key == "stream":
        return StreamPattern(rng, footprint, **kwargs)
    if key == "cyclic":
        return CyclicPattern(rng, footprint)
    if key == "random":
        return RandomPattern(rng, footprint)
    if key == "hotcold":
        return HotColdPattern(rng, footprint, **kwargs)
    if key == "region":
        return RegionBurstPattern(rng, footprint, **kwargs)
    raise ValueError(f"unknown pattern kind {kind!r}")
