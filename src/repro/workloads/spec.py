"""SPEC-CPU2006-like benchmark profiles.

Each profile renders into a deterministic synthetic trace that lands in the
same qualitative regime the paper's Figure 6 shows for the benchmark of the
same name: the x-axis there is sorted by rising baseline IPC (mcf lowest,
bwaves highest), write-heavy workloads (lbm, cactusADM, GemsFDTD, stream)
have high WPKI, libquantum is a huge streaming scan with ~unit miss rate
(Skip-Cache/CLB's best case), and bzip2/astar/bwaves mostly fit in cache.

Footprints are stated in 64 B blocks; the paper's LLC is 32768 blocks
(2 MB/core), so a footprint of 262144 blocks is an 8× overcommit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng
from repro.utils.validation import check_positive, check_range
from repro.workloads.synthetic import make_pattern


@dataclass(frozen=True)
class BenchmarkProfile:
    """Shape parameters of one synthetic benchmark.

    Attributes:
        name: benchmark label used in figures.
        pattern: address-pattern kind (see `repro.workloads.synthetic`).
        footprint_blocks: distinct blocks the workload can touch.
        mean_gap: mean non-memory instructions between memory references
            (geometric distribution) — compute density.
        write_fraction: probability a reference is a store.
        read_intensity / write_intensity: "low" | "medium" | "high" category
            labels used to build the paper's Section 5 workload mixes.
        pattern_args: extra keyword arguments for the pattern factory.
        write_pattern / write_pattern_args: optional separate address stream
            for stores. Real programs write a much smaller, more concentrated
            working set than they read (stores target the structures being
            built); cache-friendly profiles use this so their dirty working
            set is compact, as the paper's benchmarks' evidently are.
    """

    name: str
    pattern: str
    footprint_blocks: int
    mean_gap: float
    write_fraction: float
    read_intensity: str
    write_intensity: str
    pattern_args: tuple = ()
    write_pattern: str = None
    write_pattern_args: tuple = ()

    def __post_init__(self) -> None:
        check_positive("footprint_blocks", self.footprint_blocks)
        check_range("mean_gap", self.mean_gap, 0.0, 10_000.0)
        check_range("write_fraction", self.write_fraction, 0.0, 1.0)
        for label in (self.read_intensity, self.write_intensity):
            if label not in ("low", "medium", "high"):
                raise ValueError(f"bad intensity label {label!r}")


def _p(name, pattern, footprint, gap, wf, ri, wi, write_pattern=None,
       write_pattern_args=(), **pattern_args):
    return BenchmarkProfile(
        name=name,
        pattern=pattern,
        footprint_blocks=footprint,
        mean_gap=gap,
        write_fraction=wf,
        read_intensity=ri,
        write_intensity=wi,
        pattern_args=tuple(sorted(pattern_args.items())),
        write_pattern=write_pattern,
        write_pattern_args=tuple(sorted(dict(write_pattern_args).items())),
    )


#: The 14 benchmarks of Figure 6, ordered as in the paper (rising baseline IPC).
SPEC_PROFILES: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        # Write-heavy array codes use DRAM-row-sized bursts revisited at
        # scattered times: same-row dirty blocks are *written* together but
        # *evicted* apart — the exact scenario of paper Section 3.1 where
        # the baseline's write row locality collapses and AWB restores it.
        # Pointer codes (mcf/omnetpp/milc) still show page-level allocation
        # locality, so they use short region bursts rather than pure random.
        _p("mcf", "region", 262144, 6.0, 0.30, "high", "medium",
           region_blocks=128, burst_length=6),
        _p("lbm", "region", 262144, 6.0, 0.45, "high", "high",
           region_blocks=128, burst_length=16, revisit="cycle"),
        _p("GemsFDTD", "region", 196608, 7.0, 0.38, "high", "high",
           region_blocks=128, burst_length=12, revisit="cycle"),
        _p("soplex", "region", 262144, 8.0, 0.25, "high", "medium",
           region_blocks=128, burst_length=16, revisit="cycle"),
        _p("omnetpp", "region", 196608, 8.0, 0.35, "medium", "medium",
           region_blocks=128, burst_length=6),
        _p("cactusADM", "region", 131072, 9.0, 0.45, "medium", "high",
           region_blocks=128, burst_length=20, revisit="cycle"),
        _p("stream", "region", 262144, 7.0, 0.34, "high", "high",
           region_blocks=128, burst_length=32, revisit="cycle"),
        _p("leslie3d", "region", 131072, 9.0, 0.30, "medium", "medium",
           region_blocks=128, burst_length=16, revisit="cycle"),
        _p("milc", "region", 131072, 9.0, 0.35, "medium", "high",
           region_blocks=128, burst_length=8, revisit="cycle"),
        _p("sphinx3", "hotcold", 65536, 10.0, 0.05, "medium", "low",
           write_pattern="hotcold",
           write_pattern_args={"hot_fraction": 0.1, "hot_probability": 0.95},
           hot_fraction=0.2, hot_probability=0.8),
        _p("libquantum", "cyclic", 131072, 8.0, 0.20, "high", "low"),
        _p("bzip2", "hotcold", 32768, 14.0, 0.30, "low", "low",
           write_pattern="hotcold",
           write_pattern_args={"hot_fraction": 0.08, "hot_probability": 0.98},
           hot_fraction=0.15, hot_probability=0.85),
        _p("astar", "hotcold", 49152, 14.0, 0.25, "low", "low",
           write_pattern="hotcold",
           write_pattern_args={"hot_fraction": 0.1, "hot_probability": 0.98},
           hot_fraction=0.25, hot_probability=0.9),
        _p("bwaves", "stream", 49152, 16.0, 0.15, "low", "low",
           write_pattern="hotcold",
           write_pattern_args={"hot_fraction": 0.05, "hot_probability": 0.97}),
    ]
}


def profile_names() -> List[str]:
    """Figure 6's benchmark order."""
    return list(SPEC_PROFILES.keys())


def generate_trace(
    profile: BenchmarkProfile,
    num_refs: int,
    seed: int = 0xDB1,
    base_addr: int = 0,
    footprint_divisor: int = 1,
) -> Trace:
    """Render a profile into a concrete trace.

    Args:
        num_refs: memory references to generate (instruction count follows
            from the profile's mean gap).
        seed: workload RNG seed; same (profile, num_refs, seed, base_addr)
            always yields an identical trace.
        base_addr: block-address offset, used to give each core of a
            multi-programmed mix a private address space.
        footprint_divisor: shrink the footprint by this factor — used when
            the cache hierarchy itself is scaled down (see
            ``repro.analysis.scaling``) so working-set-to-cache ratios stay
            faithful to the paper while runs stay fast.
    """
    check_positive("num_refs", num_refs)
    check_positive("footprint_divisor", footprint_divisor)
    footprint = max(256, profile.footprint_blocks // footprint_divisor)
    pattern_args = dict(profile.pattern_args)
    if "region_blocks" in pattern_args:
        # Region bursts model DRAM-row-local phases; the row shrinks with
        # the machine (repro.analysis.scaling), so the burst region must too.
        pattern_args["region_blocks"] = max(
            16, pattern_args["region_blocks"] // footprint_divisor
        )
    rng = DeterministicRng(seed).derive(f"workload:{profile.name}")
    pattern = make_pattern(
        profile.pattern,
        rng.derive("addresses"),
        footprint,
        **pattern_args,
    )
    write_pattern = pattern
    if profile.write_pattern is not None:
        write_args = dict(profile.write_pattern_args)
        if "region_blocks" in write_args:
            write_args["region_blocks"] = max(
                16, write_args["region_blocks"] // footprint_divisor
            )
        write_pattern = make_pattern(
            profile.write_pattern,
            rng.derive("write-addresses"),
            footprint,
            **write_args,
        )
    gaps = rng.derive("gaps")
    writes = rng.derive("writes")
    records = []
    for _ in range(num_refs):
        is_write = writes.chance(profile.write_fraction)
        source = write_pattern if is_write else pattern
        records.append(
            (
                gaps.geometric(profile.mean_gap),
                is_write,
                base_addr + source.next_address(),
            )
        )
    return Trace(name=profile.name, records=records)


def spec_trace(
    name: str,
    num_refs: int,
    seed: int = 0xDB1,
    base_addr: int = 0,
    footprint_divisor: int = 1,
) -> Trace:
    """Generate the named Figure-6 benchmark's trace."""
    if name not in SPEC_PROFILES:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {profile_names()}"
        )
    return generate_trace(
        SPEC_PROFILES[name], num_refs, seed, base_addr, footprint_divisor
    )
