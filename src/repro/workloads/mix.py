"""Multi-programmed workload mixes (paper Section 5).

The paper classifies benchmarks into nine categories (read intensity ×
write intensity, each low/medium/high) and builds 102 2-core, 259 4-core and
120 8-core mixes spanning them. We reproduce the construction: mixes cycle
through the category grid, and each core samples a benchmark biased towards
the mix's target category. Each core gets a private address-space offset so
the mix is multi-programmed, not multi-threaded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng
from repro.utils.validation import check_positive
from repro.workloads.spec import SPEC_PROFILES, BenchmarkProfile, generate_trace

#: Block-address offset between cores: 1<<26 blocks = 4 GB of address space.
CORE_ADDRESS_STRIDE = 1 << 26

INTENSITIES = ("low", "medium", "high")


@dataclass(frozen=True)
class WorkloadMix:
    """One multi-programmed workload: a trace per core."""

    name: str
    traces: tuple
    benchmark_names: tuple

    @property
    def num_cores(self) -> int:
        return len(self.traces)


def _profiles_matching(read_intensity: str, write_intensity: str):
    """Profiles in (or nearest to) a target category.

    Write intensity is the first-class axis of this paper (it determines how
    much interference a workload *causes*), so when no benchmark matches the
    category exactly, candidates matching the write intensity are preferred
    over ones matching only the read intensity.
    """
    exact = [
        p
        for p in SPEC_PROFILES.values()
        if p.read_intensity == read_intensity
        and p.write_intensity == write_intensity
    ]
    if exact:
        return exact
    by_write = [
        p for p in SPEC_PROFILES.values()
        if p.write_intensity == write_intensity
    ]
    if by_write:
        return by_write
    by_read = [
        p for p in SPEC_PROFILES.values()
        if p.read_intensity == read_intensity
    ]
    return by_read or list(SPEC_PROFILES.values())


def make_mix(
    name: str,
    profiles: Sequence[BenchmarkProfile],
    refs_per_core: int,
    seed: int = 0xDB1,
    footprint_divisor: int = 1,
) -> WorkloadMix:
    """Build a mix from explicit profiles, one per core."""
    check_positive("refs_per_core", refs_per_core)
    traces: List[Trace] = []
    for core, profile in enumerate(profiles):
        traces.append(
            generate_trace(
                profile,
                refs_per_core,
                # Distinct seeds per core avoid lock-step address streams
                # when the same benchmark appears twice in a mix.
                seed=seed + core * 7919,
                base_addr=core * CORE_ADDRESS_STRIDE,
                footprint_divisor=footprint_divisor,
            )
        )
    return WorkloadMix(
        name=name,
        traces=tuple(traces),
        benchmark_names=tuple(p.name for p in profiles),
    )


def category_mixes(
    num_cores: int,
    count: int,
    refs_per_core: int,
    seed: int = 0xDB1,
    footprint_divisor: int = 1,
) -> List[WorkloadMix]:
    """Generate ``count`` mixes cycling over the 9 intensity categories.

    Within a mix, each core draws a benchmark biased to the mix's target
    (read, write) intensity, so the returned set spans interference-light
    through interference-heavy combinations, as in the paper's methodology.
    """
    check_positive("num_cores", num_cores)
    check_positive("count", count)
    rng = DeterministicRng(seed).derive(f"mixes:{num_cores}")
    grid = list(itertools.product(INTENSITIES, INTENSITIES))
    mixes: List[WorkloadMix] = []
    for index in range(count):
        read_intensity, write_intensity = grid[index % len(grid)]
        pool = _profiles_matching(read_intensity, write_intensity)
        profiles = [rng.choice(pool) for _ in range(num_cores)]
        name = (
            f"{num_cores}c_r{read_intensity[0].upper()}"
            f"_w{write_intensity[0].upper()}_{index:03d}"
        )
        mixes.append(
            make_mix(
                name,
                profiles,
                refs_per_core,
                seed=seed + index,
                footprint_divisor=footprint_divisor,
            )
        )
    return mixes
