"""Multi-programmed workload mixes (paper Section 5).

The paper classifies benchmarks into nine categories (read intensity ×
write intensity, each low/medium/high) and builds 102 2-core, 259 4-core and
120 8-core mixes spanning them. We reproduce the construction: mixes cycle
through the category grid, and each core samples a benchmark biased towards
the mix's target category. Each core gets a private address-space offset so
the mix is multi-programmed, not multi-threaded.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng
from repro.utils.validation import check_positive
from repro.workloads.spec import SPEC_PROFILES, BenchmarkProfile, generate_trace

#: Block-address offset between cores: 1<<26 blocks = 4 GB of address space.
CORE_ADDRESS_STRIDE = 1 << 26

INTENSITIES = ("low", "medium", "high")

#: Paper Section 5: mixes evaluated per core count (102 / 259 / 120).
PAPER_MIX_COUNTS = {2: 102, 4: 259, 8: 120}


def paper_mix_count(num_cores: int) -> int:
    """Number of mixes the paper evaluates at ``num_cores`` cores."""
    if num_cores not in PAPER_MIX_COUNTS:
        raise ValueError(
            f"the paper has no {num_cores}-core mix table; core counts with "
            f"full-width tables: {sorted(PAPER_MIX_COUNTS)}"
        )
    return PAPER_MIX_COUNTS[num_cores]


@dataclass(frozen=True)
class WorkloadMix:
    """One multi-programmed workload: a trace per core."""

    name: str
    traces: tuple
    benchmark_names: tuple

    @property
    def num_cores(self) -> int:
        return len(self.traces)


def _profiles_matching(read_intensity: str, write_intensity: str):
    """Profiles in (or nearest to) a target category.

    Write intensity is the first-class axis of this paper (it determines how
    much interference a workload *causes*), so when no benchmark matches the
    category exactly, candidates matching the write intensity are preferred
    over ones matching only the read intensity.
    """
    exact = [
        p
        for p in SPEC_PROFILES.values()
        if p.read_intensity == read_intensity
        and p.write_intensity == write_intensity
    ]
    if exact:
        return exact
    by_write = [
        p for p in SPEC_PROFILES.values()
        if p.write_intensity == write_intensity
    ]
    if by_write:
        return by_write
    by_read = [
        p for p in SPEC_PROFILES.values()
        if p.read_intensity == read_intensity
    ]
    return by_read or list(SPEC_PROFILES.values())


def make_mix(
    name: str,
    profiles: Sequence[BenchmarkProfile],
    refs_per_core: int,
    seed: int = 0xDB1,
    footprint_divisor: int = 1,
) -> WorkloadMix:
    """Build a mix from explicit profiles, one per core."""
    check_positive("refs_per_core", refs_per_core)
    traces: List[Trace] = []
    for core, profile in enumerate(profiles):
        traces.append(
            generate_trace(
                profile,
                refs_per_core,
                # Distinct seeds per core avoid lock-step address streams
                # when the same benchmark appears twice in a mix.
                seed=seed + core * 7919,
                base_addr=core * CORE_ADDRESS_STRIDE,
                footprint_divisor=footprint_divisor,
            )
        )
    return WorkloadMix(
        name=name,
        traces=tuple(traces),
        benchmark_names=tuple(p.name for p in profiles),
    )


@dataclass(frozen=True)
class MixSpec:
    """A mix's identity without its traces: cheap to enumerate at full width.

    Planning the paper's complete 102/259/120 grids must not generate half a
    billion trace records up front, so the benchmark draw (which consumes the
    category rng) is separated from trace construction. ``mix_from_spec``
    builds the traces for exactly one spec, reproducing what
    :func:`category_mixes` would have produced at the same index.
    """

    name: str
    index: int
    benchmark_names: tuple

    @property
    def num_cores(self) -> int:
        return len(self.benchmark_names)


def category_mix_specs(
    num_cores: int, count: int, seed: int = 0xDB1
) -> List[MixSpec]:
    """The benchmark composition of ``count`` category-cycling mixes.

    Consumes the derived rng exactly as :func:`category_mixes` does, so the
    spec at index ``i`` names the same benchmarks the full generator would
    assign to mix ``i``.
    """
    check_positive("num_cores", num_cores)
    check_positive("count", count)
    rng = DeterministicRng(seed).derive(f"mixes:{num_cores}")
    grid = list(itertools.product(INTENSITIES, INTENSITIES))
    specs: List[MixSpec] = []
    for index in range(count):
        read_intensity, write_intensity = grid[index % len(grid)]
        pool = _profiles_matching(read_intensity, write_intensity)
        names = tuple(rng.choice(pool).name for _ in range(num_cores))
        specs.append(
            MixSpec(
                name=(
                    f"{num_cores}c_r{read_intensity[0].upper()}"
                    f"_w{write_intensity[0].upper()}_{index:03d}"
                ),
                index=index,
                benchmark_names=names,
            )
        )
    return specs


def mix_from_spec(
    spec: MixSpec,
    refs_per_core: int,
    seed: int = 0xDB1,
    footprint_divisor: int = 1,
) -> WorkloadMix:
    """Materialize one spec's traces (identical to the full-table mix)."""
    return make_mix(
        spec.name,
        [SPEC_PROFILES[name] for name in spec.benchmark_names],
        refs_per_core,
        seed=seed + spec.index,
        footprint_divisor=footprint_divisor,
    )


def category_mixes(
    num_cores: int,
    count: int,
    refs_per_core: int,
    seed: int = 0xDB1,
    footprint_divisor: int = 1,
) -> List[WorkloadMix]:
    """Generate ``count`` mixes cycling over the 9 intensity categories.

    Within a mix, each core draws a benchmark biased to the mix's target
    (read, write) intensity, so the returned set spans interference-light
    through interference-heavy combinations, as in the paper's methodology.
    """
    check_positive("refs_per_core", refs_per_core)
    return [
        mix_from_spec(
            spec, refs_per_core, seed=seed, footprint_divisor=footprint_divisor
        )
        for spec in category_mix_specs(num_cores, count, seed=seed)
    ]


def full_mix_specs(num_cores: int, seed: int = 0xDB1) -> List[MixSpec]:
    """The paper's complete mix table for ``num_cores`` cores, as specs."""
    return category_mix_specs(num_cores, paper_mix_count(num_cores), seed=seed)


def full_mix_table(
    num_cores: int,
    refs_per_core: int,
    seed: int = 0xDB1,
    footprint_divisor: int = 1,
) -> List[WorkloadMix]:
    """The paper's complete mix table, traces included (102/259/120 mixes)."""
    return [
        mix_from_spec(
            spec, refs_per_core, seed=seed, footprint_divisor=footprint_divisor
        )
        for spec in full_mix_specs(num_cores, seed=seed)
    ]


def mix_table_fingerprint(
    specs: Sequence[MixSpec],
    refs_per_core: int,
    seed: int = 0xDB1,
    footprint_divisor: int = 1,
) -> str:
    """A digest pinning a mix table's identity.

    Covers every input that determines the generated traces — mix names,
    benchmark composition, per-core trace length, seed and footprint scaling
    — without materializing the traces, so campaign resume can cross-check
    that the planned table still regenerates bit-identically.
    """
    digest = hashlib.sha256()
    digest.update(f"mixtable:v1:{refs_per_core}:{seed}:{footprint_divisor}"
                  .encode())
    for spec in specs:
        digest.update(
            f"|{spec.index}:{spec.name}:{','.join(spec.benchmark_names)}"
            .encode()
        )
    return digest.hexdigest()
