"""Command-line interface: ``python -m repro <command>``.

Commands:
    list        — benchmarks, mechanisms and scale profiles available.
    run         — simulate one benchmark under one mechanism, print metrics.
    experiment  — regenerate one paper artifact (fig6 fig7 fig8 table3
                  table6 table7 case-study replacement drrip).
    reliability — Section 3.3 soft-error study: inject seeded single-bit
                  upsets and compare heterogeneous-ECC data loss between
                  DBI-tracked and untracked protection domains.
    check-diff  — differentially validate every mechanism against the
                  untimed golden reference model (see repro.check).
    profile     — run one benchmark/mechanism with the per-event time-share
                  profiler attached and report where simulation time goes
                  (component shares and the costliest callback sites).
    timeline    — per-epoch telemetry view of one run (or a saved JSONL
                  stream): ASCII sparklines and a table of any stat keys,
                  with the measured warmup boundary marked.

``run`` and ``experiment`` accept ``--check {off,cheap,full}`` to enable the
runtime invariant engine (off by default; results are identical either way),
and ``--telemetry``/``--epoch-cycles`` to attach the epoch sampler (also
observational: final statistics are byte-identical with it on or off).

Both also accept ``--sampled [SPEC]`` for SMARTS-style sampled simulation
(detailed measurement windows with functional fast-forward between them,
reported with 95% confidence intervals), and ``experiment`` accepts
``--checkpoint-dir DIR`` for fork-from-warm sweeps (one warm image per
benchmark/config group, every mechanism cell forked from it). Both are
documented approximations of full runs — cached under distinct keys, and
mutually exclusive with ``--check``/``--telemetry``.

``experiment`` is fault-tolerant: worker crashes and hangs are retried with
exponential backoff (``--max-attempts``, ``--job-timeout``), and
``--keep-going`` renders partial artifacts — failed cells become ``n/a`` and
the exhausted jobs land in ``results/sweep_failures.json``. ``--chaos`` (or
the ``REPRO_CHAOS`` environment variable) injects deterministic worker
crashes/hangs/cache corruption for testing that machinery.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.analysis.scaling import SCALES
    from repro.mechanisms.registry import MECHANISM_NAMES
    from repro.workloads.spec import profile_names

    print("benchmarks: ", ", ".join(profile_names()))
    print("mechanisms: ", ", ".join(MECHANISM_NAMES))
    print("scales:     ", ", ".join(sorted(SCALES)))
    return 0


def _cmd_run_sampled(args, config, trace) -> int:
    """``run --sampled``: SMARTS windows + per-metric confidence intervals."""
    from repro.checkpoint import run_sampled
    from repro.checkpoint.sampled import SampledConfig

    if args.check != "off" or args.telemetry:
        print(
            "--sampled does not compose with --check or --telemetry "
            "(functional fast-forward breaks the ledger invariants and "
            "the epoch stream)",
            file=sys.stderr,
        )
        return 2
    try:
        sampled_config = SampledConfig.parse(args.sampled)
    except ValueError as exc:
        print(f"bad --sampled spec: {exc}", file=sys.stderr)
        return 2
    outcome = run_sampled(config, [trace], sampled_config)
    result = outcome.result
    total = outcome.detailed_instructions + outcome.skipped_instructions
    print(f"benchmark          {args.benchmark}")
    print(f"mechanism          {args.mechanism}")
    print(f"IPC                {result.ipc[0]:.4f}")
    print(f"write row hit rate {result.write_row_hit_rate:.2%}")
    print(f"read row hit rate  {result.read_row_hit_rate:.2%}")
    print(f"tag lookups / ki   {result.tag_lookups_pki:.1f}")
    print(f"memory WPKI        {result.memory_wpki:.1f}")
    print(f"LLC MPKI           {result.llc_mpki:.1f}")
    print(
        f"sampling           {outcome.windows_run} windows, "
        f"{outcome.detailed_instructions} detailed + "
        f"{outcome.skipped_instructions} fast-forwarded instructions "
        f"({outcome.detailed_instructions / max(1, total):.0%} detailed)"
    )
    print("95% confidence intervals over the windows:")
    for name in sorted(outcome.estimates):
        estimate = outcome.estimates[name]
        print(
            f"  {name:<22s} {estimate.mean:10.4f}  "
            f"[{estimate.ci_low:.4f}, {estimate.ci_high:.4f}]  "
            f"n={estimate.samples}"
        )
    return 0


def _cmd_run(args) -> int:
    from repro.analysis.scaling import SCALES
    from repro.sim.system import System

    scale = SCALES[args.scale]
    trace = scale.benchmark_trace(args.benchmark, refs=args.refs)
    overrides = {}
    if args.dram_cache is not None:
        from repro.analysis.experiments import _dramcache_level_config

        overrides["dram_cache"] = _dramcache_level_config(
            scale, args.dram_cache
        )
    config = scale.system_config(args.mechanism, **overrides)
    if args.sampled is not None:
        return _cmd_run_sampled(args, config, trace)
    telemetry = None
    if args.telemetry:
        from repro.telemetry.sampler import TelemetryConfig

        telemetry = TelemetryConfig(
            epoch_cycles=args.epoch_cycles,
            jsonl_path=args.telemetry,
            meta=(("benchmark", args.benchmark), ("mechanism", args.mechanism)),
        )
    system = System(
        config,
        [trace],
        check=args.check,
        telemetry=telemetry,
    )
    result = system.run()
    print(f"benchmark          {args.benchmark}")
    print(f"mechanism          {args.mechanism}")
    print(f"IPC                {result.ipc[0]:.4f}")
    print(f"write row hit rate {result.write_row_hit_rate:.2%}")
    print(f"read row hit rate  {result.read_row_hit_rate:.2%}")
    print(f"tag lookups / ki   {result.tag_lookups_pki:.1f}")
    print(f"memory WPKI        {result.memory_wpki:.1f}")
    print(f"LLC MPKI           {result.llc_mpki:.1f}")
    print(f"events processed   {result.events_processed}")
    if args.dram_cache is not None:
        reads = result.stats.get("dramcache.reads", 0)
        hits = result.stats.get("dramcache.read_hits", 0)
        print(f"dramcache backend  {args.dram_cache}")
        print(f"dramcache hit rate {hits / reads if reads else 0.0:.2%}")
        print(
            f"dramcache off-chip writes "
            f"{result.stats.get('dramcache.offchip_writes', 0):.0f}"
        )
    if system.telemetry is not None:
        from repro.telemetry.analysis import warmup_report

        report = warmup_report(list(system.telemetry.records))
        boundary = report["boundary_epoch"]
        print(f"epochs sampled     {system.telemetry.epochs_emitted}")
        if boundary is None:
            print("measured warmup    not reached (IPC never settled)")
        else:
            print(
                f"measured warmup    epoch {boundary} "
                f"({report['measured_warmup_fraction']:.0%} of instructions; "
                f"configured warmup is 40%)"
            )
            steady = report["steady_state"]
            print(f"steady-state IPC   {steady['ipc']:.4f}")
        print(f"telemetry written  {args.telemetry}")
    return 0


def make_sweep_runner(args):
    """Build the SweepRunner the --workers/--cache/--retry flags describe."""
    from repro.analysis.chaos import chaos_from_env, parse_chaos_spec
    from repro.analysis.runner import (
        DEFAULT_CACHE_DIR,
        RetryPolicy,
        SweepRunner,
        stderr_progress,
    )

    retry = RetryPolicy(
        max_attempts=getattr(args, "max_attempts", None) or 3,
        timeout=getattr(args, "job_timeout", None),
    )
    chaos_spec = getattr(args, "chaos", None)
    chaos = (
        parse_chaos_spec(chaos_spec) if chaos_spec is not None
        else chaos_from_env()
    )
    telemetry = None
    if getattr(args, "telemetry", False):
        from repro.telemetry.sampler import TelemetryConfig

        telemetry = TelemetryConfig(
            epoch_cycles=getattr(args, "epoch_cycles", None) or 5_000
        )
    sampled = None
    sampled_spec = getattr(args, "sampled", None)
    if sampled_spec is not None:
        from repro.checkpoint.sampled import SampledConfig

        sampled = SampledConfig.parse(sampled_spec)
    return SweepRunner(
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        sampled=sampled,
        workers=args.workers,
        cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
        use_cache=not args.no_cache,
        progress=None if args.quiet else stderr_progress,
        check=getattr(args, "check", "off"),
        retry=retry,
        keep_going=getattr(args, "keep_going", False),
        chaos=chaos,
        telemetry=telemetry,
        telemetry_dir=getattr(args, "telemetry_dir", None),
        retain_failed_telemetry=getattr(args, "retain_failed_telemetry", False),
    )


def _cmd_experiment(args) -> int:
    from repro.analysis import experiments
    from repro.analysis.scaling import SCALES

    scale = SCALES[args.scale]
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    try:
        sweep = make_sweep_runner(args)
    except ValueError as exc:
        # e.g. --checkpoint-dir/--sampled combined with --check/--telemetry,
        # or a malformed --sampled spec.
        print(str(exc), file=sys.stderr)
        return 2
    runners = {
        "fig6": lambda: "\n\n".join(
            r.to_text()
            for _k, r in sorted(
                experiments.run_figure6(
                    scale, benchmarks=benchmarks, runner=sweep
                ).items()
            )
        ),
        "fig7": lambda: experiments.run_figure7(scale, runner=sweep).to_text(),
        "fig8": lambda: experiments.run_figure8(scale, runner=sweep).to_text(),
        "table3": lambda: experiments.run_table3(scale, runner=sweep).to_text(),
        "table6": lambda: experiments.run_table6(scale, runner=sweep).to_text(),
        "table7": lambda: experiments.run_table7(scale, runner=sweep).to_text(),
        "case-study": lambda: experiments.run_case_study(
            scale, runner=sweep).to_text(),
        "replacement": lambda: experiments.run_dbi_replacement_study(
            scale, runner=sweep).to_text(),
        "drrip": lambda: experiments.run_drrip_study(
            scale, runner=sweep).to_text(),
        "dramcache": lambda: experiments.run_dramcache(
            scale, benchmarks=benchmarks, runner=sweep).to_text(),
    }
    if args.name not in runners:
        print(f"unknown experiment {args.name!r}; choose from {sorted(runners)}",
              file=sys.stderr)
        return 2
    try:
        print(runners[args.name]())
    finally:
        sweep.close()
        if sweep.failures:
            manifest = sweep.write_failure_manifest()
            print(
                f"{sweep.jobs_failed}/{sweep.jobs_submitted} jobs failed; "
                f"manifest written to {manifest}",
                file=sys.stderr,
            )
    if not args.quiet:
        print(sweep.summary(), file=sys.stderr)
    return 0


def _cmd_campaign(args) -> int:
    """``repro campaign {plan,run,status}``: crash-consistent sweeps."""
    from repro.campaign import (
        Campaign,
        CampaignConfig,
        CampaignError,
        campaign_status,
        render_status,
    )

    if args.subcommand == "status":
        try:
            print(render_status(campaign_status(args.dir)))
        except (CampaignError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        return 0

    def build_config():
        from repro.workloads.spec import profile_names

        benchmarks = (
            tuple(b.strip() for b in args.benchmarks.split(","))
            if args.benchmarks
            else ()
        )
        mechanisms = None
        if args.mechanisms:
            mechanisms = tuple(m.strip() for m in args.mechanisms.split(","))
        core_counts = (
            tuple(int(c) for c in args.cores.split(","))
            if args.cores
            else None
        )
        sensitivity = (
            tuple(int(d) for d in args.sensitivity.split(","))
            if args.sensitivity
            else ()
        )
        sens_benchmarks = (
            tuple(b.strip() for b in args.sensitivity_benchmarks.split(","))
            if args.sensitivity_benchmarks
            else ()
        )
        ingested = ()
        if args.ingest:
            from repro.sim.ingest import load_registry

            registry = load_registry(args.ingest_dir)["traces"]
            names = tuple(n.strip() for n in args.ingest.split(","))
            missing = [n for n in names if n not in registry]
            if missing:
                raise ValueError(
                    f"traces not registered in {args.ingest_dir}: "
                    f"{', '.join(missing)} (run 'repro ingest' first)"
                )
            ingested = tuple((n, registry[n]["sha256"]) for n in names)

        if args.tier:
            from repro.campaign.tiers import tier_config

            overrides = dict(
                benchmarks=benchmarks,
                telemetry=args.telemetry,
                epoch_cycles=args.epoch_cycles,
                checkpoint=args.checkpoint,
                workers=0 if args.workers is None else args.workers,
                ingested=ingested,
                ingest_dir=args.ingest_dir if ingested else None,
            )
            if args.scale:
                overrides["scale"] = args.scale
            if mechanisms is not None:
                overrides["mechanisms"] = mechanisms
            if core_counts is not None:
                overrides["core_counts"] = core_counts
            if args.refs is not None:
                overrides["refs"] = args.refs
            if args.shards is not None:
                overrides["shards"] = args.shards
            if sensitivity:
                overrides["sensitivity"] = sensitivity
            if sens_benchmarks:
                overrides["sensitivity_benchmarks"] = sens_benchmarks
            return tier_config(args.tier, **overrides)

        kwargs = dict(
            scale=args.scale or "quick",
            benchmarks=benchmarks or tuple(profile_names()),
            core_counts=core_counts or (1,),
            refs=args.refs,
            telemetry=args.telemetry,
            epoch_cycles=args.epoch_cycles,
            checkpoint=args.checkpoint,
            workers=0 if args.workers is None else args.workers,
            full_width=args.full_width,
            shards=args.shards or 0,
            sensitivity=sensitivity,
            sensitivity_benchmarks=sens_benchmarks,
            ingested=ingested,
            ingest_dir=args.ingest_dir if ingested else None,
        )
        if mechanisms is not None:
            kwargs["mechanisms"] = mechanisms
        return CampaignConfig(**kwargs)

    import os as _os

    journal_exists = _os.path.exists(_os.path.join(args.dir, "journal.jsonl"))
    try:
        if journal_exists:
            campaign = Campaign.open(args.dir)
        else:
            if args.resume:
                print(
                    f"{args.dir}: nothing to resume (no journal)",
                    file=sys.stderr,
                )
                return 2
            campaign = Campaign.create(args.dir, build_config())
    except (CampaignError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    with campaign:
        if campaign.recovered_torn:
            print(
                f"recovered torn journal tail -> {campaign.recovered_torn}",
                file=sys.stderr,
            )
        if args.subcommand == "plan":
            from repro.analysis.report import format_table

            rows = [
                [c.cell_id, c.category, c.mechanism, c.workload, c.num_cores]
                for c in campaign.cells
            ]
            tier = campaign.config.tier
            print(
                format_table(
                    ["cell", "kind", "mechanism", "workload", "cores"],
                    rows,
                    title=f"campaign plan: {len(rows)} cells "
                          f"({campaign.config.scale} scale"
                          + (f", {tier} tier)" if tier else ")"),
                )
            )
            return 0
        from repro.analysis.chaos import campaign_chaos_from_env

        chaos_config = campaign_chaos_from_env()
        chaos = None
        if chaos_config is not None:
            from repro.analysis.chaos import CampaignFaultInjector

            chaos = CampaignFaultInjector(chaos_config)
        outcome = campaign.run(
            workers=args.workers,
            progress=None if args.quiet else _campaign_progress,
            chaos=chaos,
            max_attempts=args.max_attempts or 3,
            job_timeout=args.job_timeout,
        )
    if outcome.status == "complete":
        report = _os.path.join(args.dir, "report.txt")
        with open(report) as handle:
            print(handle.read(), end="")
        if not args.quiet and outcome.sweep_summary:
            print(outcome.sweep_summary, file=sys.stderr)
    elif outcome.status == "drained":
        print(
            f"campaign drained on signal {outcome.signal}: "
            f"{outcome.cells_done}/{outcome.cells_total} cells done, "
            f"{len(outcome.pending)} pending; resume with "
            f"'repro campaign run --dir {args.dir}'",
            file=sys.stderr,
        )
    else:
        print(
            f"campaign failed: {outcome.cells_failed} cell(s) exhausted "
            f"retries; see {_os.path.join(args.dir, 'manifest.json')}",
            file=sys.stderr,
        )
    return outcome.exit_code


def _campaign_progress(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


def _cmd_ingest(args) -> int:
    """``repro ingest``: external traces -> registered campaign workloads."""
    from repro.sim.ingest import (
        DEFAULT_GAP_SCALE,
        DEFAULT_MAX_GAP,
        ingest_trace,
        load_registry,
    )

    if args.list_traces:
        try:
            registry = load_registry(args.registry)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        from repro.analysis.report import format_table

        rows = [
            [name, entry["records"], entry["source_format"],
             entry["sha256"][:12], entry["source"]]
            for name, entry in sorted(registry["traces"].items())
        ]
        print(
            format_table(
                ["trace", "records", "format", "sha256", "source"],
                rows,
                title=f"trace registry: {args.registry}",
            )
        )
        return 0

    if not args.sources:
        print("nothing to ingest (pass FILE... or --list)", file=sys.stderr)
        return 2
    if args.name is not None and len(args.sources) != 1:
        print("--name needs exactly one source file", file=sys.stderr)
        return 2
    for source in args.sources:
        try:
            entry = ingest_trace(
                source,
                args.registry,
                name=args.name,
                fmt=args.fmt,
                block_bytes=args.block_bytes,
                gap_scale=args.gap_scale or DEFAULT_GAP_SCALE,
                max_gap=args.max_gap or DEFAULT_MAX_GAP,
            )
        except (OSError, ValueError) as exc:
            print(f"ingest failed: {exc}", file=sys.stderr)
            return 2
        name = args.name or entry["file"].rsplit(".", 1)[0]
        print(
            f"registered {name}: {entry['records']} records "
            f"({entry['source_format']}) sha256 {entry['sha256'][:12]}"
        )
    return 0


def _cmd_reliability(args) -> int:
    from fractions import Fraction

    from repro.analysis.experiments import run_reliability
    from repro.analysis.scaling import SCALES

    scale = SCALES[args.scale]
    mechanisms = (
        [m.strip() for m in args.mechanisms.split(",")]
        if args.mechanisms
        else ("baseline", "dbi", "dbi+awb+clb")
    )
    alphas = (
        [Fraction(a.strip()) for a in args.alphas.split(",")]
        if args.alphas
        else (Fraction(1, 4), Fraction(1, 2))
    )
    result = run_reliability(
        scale,
        benchmark=args.benchmark,
        mechanisms=mechanisms,
        alphas=alphas,
        faults=args.faults,
        interval=args.interval,
        seed=args.seed,
        double_bit_fraction=args.double_bit_fraction,
        refs=args.refs,
    )
    print(result.to_text())
    violations = sum(
        counts["protection_violations"] for counts in result.raw.values()
    )
    if violations:
        print(
            f"{violations} protection-invariant violations detected",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_profile(args) -> int:
    import time

    from repro.analysis.scaling import SCALES
    from repro.sim.profiler import SimProfiler
    from repro.sim.system import run_system

    scale = SCALES[args.scale]
    trace = scale.benchmark_trace(args.benchmark, refs=args.refs)
    profiler = SimProfiler()
    start = time.perf_counter()
    result = run_system(
        scale.system_config(args.mechanism), [trace], profiler=profiler
    )
    wall = time.perf_counter() - start
    if args.json:
        import json

        payload = {
            "benchmark": args.benchmark,
            "mechanism": args.mechanism,
            "scale": args.scale,
            "events_processed": result.events_processed,
            "events_per_second": result.events_processed / wall,
        }
        payload.update(profiler.to_dict(wall_seconds=wall))
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"benchmark {args.benchmark}  mechanism {args.mechanism}  "
            f"scale {args.scale}"
        )
        print(
            f"{result.events_processed} events in {wall:.3f}s "
            f"({result.events_processed / wall:,.0f} events/s)"
        )
        print()
        print(profiler.to_text(wall_seconds=wall))
    return 0


def _cmd_timeline(args) -> int:
    from repro.telemetry.timeline import DEFAULT_KEYS, render_timeline

    if args.input:
        from repro.telemetry.sampler import read_jsonl

        header, records = read_jsonl(args.input)
        parts = [
            f"{key}={header[key]}"
            for key in ("benchmark", "mechanism", "label", "traces")
            if key in header
        ]
        title = f"telemetry from {args.input}" + (
            f" ({', '.join(parts)})" if parts else ""
        )
    else:
        if not args.benchmark or not args.mechanism:
            print(
                "timeline needs either --input FILE or a benchmark and "
                "a mechanism to run",
                file=sys.stderr,
            )
            return 2
        from repro.analysis.scaling import SCALES
        from repro.sim.system import System
        from repro.telemetry.sampler import TelemetryConfig

        scale = SCALES[args.scale]
        trace = scale.benchmark_trace(args.benchmark, refs=args.refs)
        system = System(
            scale.system_config(args.mechanism),
            [trace],
            telemetry=TelemetryConfig(epoch_cycles=args.epoch_cycles),
        )
        system.run()
        records = list(system.telemetry.records)
        title = (
            f"{args.benchmark} under {args.mechanism} "
            f"({args.scale} scale, {args.epoch_cycles}-cycle epochs)"
        )
    keys = args.stat or list(DEFAULT_KEYS)
    print(
        render_timeline(
            records,
            keys=keys,
            width=args.width,
            max_rows=args.max_rows,
            title=title,
        )
    )
    return 0


def _cmd_check_diff(args) -> int:
    from repro.analysis.scaling import SCALES
    from repro.check import run_check_diff

    scale = SCALES[args.scale]
    benchmarks = (args.benchmarks or "lbm").split(",")
    traces = [
        scale.benchmark_trace(name.strip(), refs=args.refs)
        for name in benchmarks
    ]
    # None = every mechanism family; oracle v2's drain-schedule replay makes
    # all of them eligible with or without --dram-cache.
    mechanisms = (
        [m.strip() for m in args.mechanisms.split(",")]
        if args.mechanisms
        else None
    )
    try:
        report = run_check_diff(
            traces, mechanisms=mechanisms, dram_cache=args.dram_cache
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.to_text())
    return 0 if report.ok else 1


def _cmd_conformance(args) -> int:
    from repro.check.conformance import (
        CampaignConfig,
        replay_finding,
        run_campaign,
    )

    if args.replay:
        outcome = replay_finding(args.replay)
        print(outcome.spec.describe())
        if outcome.ok:
            print("replay: clean (the finding no longer reproduces)")
            return 0
        for failure in outcome.failures:
            print(f"  {failure}")
        return 1

    config = CampaignConfig(
        trials=args.trials,
        seed=args.seed,
        shrink=not args.no_shrink,
    )
    if args.out:
        config.out_dir = args.out
    result = run_campaign(config)
    print(result.to_text())
    return 0 if result.ok else 1


def _cmd_dramcache(args) -> int:
    from repro.analysis import experiments
    from repro.analysis.scaling import SCALES

    scale = SCALES[args.scale]
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    try:
        sweep = make_sweep_runner(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        result = experiments.run_dramcache(
            scale,
            benchmarks=benchmarks,
            mechanism=args.mechanism,
            runner=sweep,
        )
        print(result.to_text())
    finally:
        sweep.close()
    if not args.quiet:
        print(sweep.summary(), file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show benchmarks/mechanisms/scales")

    run_parser = sub.add_parser("run", help="simulate one benchmark")
    run_parser.add_argument("benchmark")
    run_parser.add_argument("mechanism")
    run_parser.add_argument("--scale", default="quick")
    run_parser.add_argument("--refs", type=int, default=None)
    run_parser.add_argument(
        "--check", choices=("off", "cheap", "full"), default="off",
        help="runtime invariant checking level (default: off)",
    )
    run_parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="stream per-epoch telemetry to this JSONL file and print the "
             "measured warmup boundary (observational: metrics unchanged)",
    )
    run_parser.add_argument(
        "--epoch-cycles", type=int, default=5_000, metavar="N",
        help="telemetry epoch length in cycles (default: 5000)",
    )
    run_parser.add_argument(
        "--dram-cache", choices=("tag", "dbi"), default=None,
        help="insert a die-stacked DRAM-cache level between the LLC and "
             "off-chip DRAM, with this dirty-tracking backend",
    )
    run_parser.add_argument(
        "--sampled", nargs="?", const="default", default=None, metavar="SPEC",
        help="SMARTS-style sampled run: detailed windows with functional "
             "fast-forward between them, reporting per-metric 95%% "
             "confidence intervals. SPEC tunes the schedule, e.g. "
             "'windows=8,window_cycles=2000,warmup_cycles=2000' (defaults "
             "shown); incompatible with --check/--telemetry",
    )

    exp_parser = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp_parser.add_argument("name")
    exp_parser.add_argument("--scale", default="quick")
    exp_parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default: cpu_count - 1; "
             "0/1 runs jobs inline)",
    )
    exp_parser.add_argument(
        "--cache-dir", default=None,
        help="sweep result cache directory (default: results/sweep_cache)",
    )
    exp_parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk sweep cache",
    )
    exp_parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark subset (fig6 only)",
    )
    exp_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines on stderr",
    )
    exp_parser.add_argument(
        "--check", choices=("off", "cheap", "full"), default="off",
        help="runtime invariant checking level for every job (default: off)",
    )
    exp_parser.add_argument(
        "--keep-going", action="store_true",
        help="render partial artifacts when jobs exhaust their retries "
             "(failed cells become n/a; results/sweep_failures.json lists "
             "the tracebacks) instead of aborting on the first failure",
    )
    exp_parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout; a job exceeding it counts as a "
             "hung worker and is retried (default: no timeout)",
    )
    exp_parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="total attempts per job for retryable failures — worker "
             "crashes and timeouts (default: 3); deterministic simulation "
             "errors never retry",
    )
    exp_parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="fault-injection spec for testing the retry machinery, e.g. "
             "'seed=7,crash=0.3,hang=0.1,corrupt=0.2' (default: the "
             "REPRO_CHAOS environment variable; 'off' disables)",
    )
    exp_parser.add_argument(
        "--telemetry", action="store_true",
        help="attach the epoch sampler to every simulated job, writing one "
             "<key>.telemetry.jsonl per job (cache hits skip simulating and "
             "produce no artifact)",
    )
    exp_parser.add_argument(
        "--epoch-cycles", type=int, default=5_000, metavar="N",
        help="telemetry epoch length in cycles (default: 5000)",
    )
    exp_parser.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="telemetry artifact directory (default: the sweep cache dir)",
    )
    exp_parser.add_argument(
        "--retain-failed-telemetry", action="store_true",
        help="keep the .partial epoch stream of terminally failed jobs as "
             "a forensic trail instead of deleting it",
    )
    exp_parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="enable fork-from-warm sweeps: warm each (benchmark, config) "
             "group once, snapshot into DIR, and fork every per-mechanism "
             "cell from the shared warm image (documented approximation of "
             "cold runs; cached under distinct keys; incompatible with "
             "--check/--telemetry)",
    )
    exp_parser.add_argument(
        "--sampled", nargs="?", const="default", default=None, metavar="SPEC",
        help="run every cell in SMARTS-style sampled mode (detailed windows "
             "+ functional fast-forward); composes with --checkpoint-dir "
             "for the fastest sweeps. SPEC e.g. "
             "'windows=8,window_cycles=2000' (incompatible with "
             "--check/--telemetry)",
    )

    rel_parser = sub.add_parser(
        "reliability",
        help="soft-error study: heterogeneous-ECC data loss, DBI vs untracked",
    )
    rel_parser.add_argument("--scale", default="quick")
    rel_parser.add_argument(
        "--benchmark", default="lbm",
        help="benchmark trace to run under injection (default: lbm)",
    )
    rel_parser.add_argument(
        "--mechanisms", default=None,
        help="comma-separated mechanisms (default: baseline,dbi,dbi+awb+clb)",
    )
    rel_parser.add_argument(
        "--alphas", default=None,
        help="comma-separated DBI α fractions, e.g. '1/4,1/2' (default)",
    )
    rel_parser.add_argument(
        "--faults", type=int, default=200,
        help="soft errors to inject per run (default: 200)",
    )
    rel_parser.add_argument(
        "--interval", type=int, default=500,
        help="cycles between injections (default: 500)",
    )
    rel_parser.add_argument(
        "--seed", type=lambda v: int(v, 0), default=0x5EED,
        help="injection seed (default: 0x5EED)",
    )
    rel_parser.add_argument(
        "--double-bit-fraction", type=float, default=0.0,
        help="fraction of upsets that flip two bits (default: 0)",
    )
    rel_parser.add_argument(
        "--refs", type=int, default=None,
        help="memory references per trace (default: scale profile's)",
    )

    prof_parser = sub.add_parser(
        "profile",
        help="time-share profile of one simulation (per-component breakdown)",
    )
    prof_parser.add_argument("benchmark")
    prof_parser.add_argument("mechanism")
    prof_parser.add_argument("--scale", default="quick")
    prof_parser.add_argument(
        "--refs", type=int, default=None,
        help="memory references in the trace (default: scale profile's)",
    )
    prof_parser.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )

    tl_parser = sub.add_parser(
        "timeline",
        help="per-epoch telemetry table and sparklines for one run",
    )
    tl_parser.add_argument(
        "benchmark", nargs="?", default=None,
        help="benchmark to simulate (omit when using --input)",
    )
    tl_parser.add_argument(
        "mechanism", nargs="?", default=None,
        help="mechanism to simulate (omit when using --input)",
    )
    tl_parser.add_argument(
        "--input", default=None, metavar="PATH",
        help="render a saved telemetry JSONL stream instead of simulating "
             "(e.g. an artifact from 'run --telemetry' or "
             "'experiment --telemetry')",
    )
    tl_parser.add_argument("--scale", default="quick")
    tl_parser.add_argument(
        "--refs", type=int, default=None,
        help="memory references in the trace (default: scale profile's)",
    )
    tl_parser.add_argument(
        "--epoch-cycles", type=int, default=2_000, metavar="N",
        help="epoch length in cycles (default: 2000 — finer than run's "
             "5000 because this view is about within-run structure)",
    )
    tl_parser.add_argument(
        "--stat", action="append", default=None, metavar="KEY",
        help="stat key to plot (repeatable; counter deltas like "
             "'mech.read_hits', gauges like 'mech.dbi_occupancy', or "
             "record fields like 'ipc'; default: ipc and "
             "dram.write_buffer_depth)",
    )
    tl_parser.add_argument(
        "--width", type=int, default=60,
        help="sparkline width in columns (default: 60)",
    )
    tl_parser.add_argument(
        "--max-rows", type=int, default=40,
        help="table rows before subsampling every Nth epoch (default: 40)",
    )

    diff_parser = sub.add_parser(
        "check-diff",
        help="validate mechanisms against the untimed reference model",
    )
    diff_parser.add_argument("--scale", default="quick")
    diff_parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark traces to replay, one per core "
             "(default: lbm)",
    )
    diff_parser.add_argument(
        "--mechanisms", default=None,
        help="comma-separated mechanism subset (default: all)",
    )
    diff_parser.add_argument(
        "--refs", type=int, default=3000,
        help="memory references per trace (default: 3000)",
    )
    diff_parser.add_argument(
        "--dram-cache", choices=("tag", "dbi"), default=None,
        help="attach a die-stacked DRAM-cache level with this dirty backend "
             "and also prove the level equivalent to the untimed reference "
             "(every mechanism family is eligible: the oracle replays the "
             "recorded drain schedule)",
    )

    conf_parser = sub.add_parser(
        "conformance",
        help="coverage-guided random differential + invariant campaign",
    )
    conf_parser.add_argument(
        "--trials", type=int, default=24,
        help="trial budget for the campaign (default: 24)",
    )
    conf_parser.add_argument(
        "--seed", type=lambda v: int(v, 0), default=0xC0F0,
        help="campaign seed; same seed = same trials and coverage map "
             "(default: 0xC0F0)",
    )
    conf_parser.add_argument(
        "--out", default=None,
        help="artifact directory for coverage.json and finding repro "
             "scripts (default: results/conformance)",
    )
    conf_parser.add_argument(
        "--no-shrink", action="store_true",
        help="write failing trials unshrunk (faster triage turnaround)",
    )
    conf_parser.add_argument(
        "--replay", default=None, metavar="FINDING.json",
        help="re-run one written finding instead of a campaign",
    )

    dc_parser = sub.add_parser(
        "dramcache",
        help="DRAM-cache dirty-tracking trade-off: tag dirty bits vs DBI "
             "with aggressive whole-row writeback",
    )
    dc_parser.add_argument("--scale", default="quick")
    dc_parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark subset (default: lbm,milc,mcf)",
    )
    dc_parser.add_argument(
        "--mechanism", default="baseline",
        help="LLC mechanism above the level (default: baseline)",
    )
    dc_parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default: cpu_count - 1)",
    )
    dc_parser.add_argument(
        "--cache-dir", default=None,
        help="sweep result cache directory (default: results/sweep_cache)",
    )
    dc_parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk sweep cache",
    )
    dc_parser.add_argument(
        "--check", choices=("off", "cheap", "full"), default="off",
        help="runtime invariant checking level for every job (default: off)",
    )
    dc_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines on stderr",
    )

    campaign_parser = sub.add_parser(
        "campaign",
        help="crash-consistent sweep campaigns: plan, run/resume, status",
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="subcommand", required=True
    )
    for name, blurb in (
        ("plan", "create the journal and print the cell grid"),
        ("run", "run (or resume) a campaign to completion"),
        ("status", "read-only progress and health report"),
    ):
        cp = campaign_sub.add_parser(name, help=blurb)
        cp.add_argument(
            "--dir", default="results/campaign", metavar="DIR",
            help="campaign directory (journal, cache, artifacts; "
                 "default: results/campaign)",
        )
        if name == "status":
            continue
        cp.add_argument(
            "--tier", default=None, choices=("quick", "nightly", "full"),
            help="campaign preset (scale, workloads, shards, sensitivity); "
                 "explicit flags override preset fields",
        )
        cp.add_argument("--scale", default=None)
        cp.add_argument(
            "--benchmarks", default=None,
            help="comma-separated benchmarks for single-core cells "
                 "(default: all)",
        )
        cp.add_argument(
            "--mechanisms", default=None,
            help="comma-separated mechanisms (default: the Figure 7 lineup)",
        )
        cp.add_argument(
            "--cores", default=None,
            help="comma-separated core counts, e.g. '1,2,4' (default: 1; "
                 "multi-core counts use the scale profile's mixes)",
        )
        cp.add_argument(
            "--refs", type=int, default=None,
            help="memory references per trace (default: scale profile's)",
        )
        cp.add_argument(
            "--workers", type=int, default=None,
            help="worker processes (default: 0 = inline)",
        )
        cp.add_argument(
            "--telemetry", action="store_true",
            help="attach the epoch sampler to every cell "
                 "(artifacts in DIR/telemetry)",
        )
        cp.add_argument(
            "--epoch-cycles", type=int, default=5_000, metavar="N",
        )
        cp.add_argument(
            "--checkpoint", action="store_true",
            help="fork-from-warm cells (shared warm images in "
                 "DIR/checkpoints; incompatible with --telemetry)",
        )
        cp.add_argument(
            "--full-width", action="store_true",
            help="the paper's complete 102/259/120 mix tables plus the "
                 "alone-IPC normalizer cells (Figure 7/8 surfaces)",
        )
        cp.add_argument(
            "--shards", type=int, default=None, metavar="N",
            help="split each long run into N stitched epoch segments "
                 "(distributable across workers; default: whole runs)",
        )
        cp.add_argument(
            "--sensitivity", default=None, metavar="DIVISORS",
            help="comma-separated stacked-bandwidth divisors for the "
                 "dramcache sensitivity sweep, e.g. '1,2,4'",
        )
        cp.add_argument(
            "--sensitivity-benchmarks", default=None, metavar="NAMES",
            help="benchmarks the sensitivity sweep averages over",
        )
        cp.add_argument(
            "--ingest", default=None, metavar="NAMES",
            help="comma-separated registered trace names to add as "
                 "campaign cells (see 'repro ingest')",
        )
        cp.add_argument(
            "--ingest-dir", default="results/traces", metavar="DIR",
            help="trace registry directory (default: results/traces)",
        )
        cp.add_argument(
            "--resume", action="store_true",
            help="require an existing journal (refuse to plan fresh)",
        )
        cp.add_argument(
            "--max-attempts", type=int, default=None, metavar="N",
        )
        cp.add_argument(
            "--job-timeout", type=float, default=None, metavar="SECONDS",
        )
        cp.add_argument("--quiet", action="store_true")

    ingest_parser = sub.add_parser(
        "ingest",
        help="validate, convert and register external memory traces",
    )
    ingest_parser.add_argument(
        "sources", nargs="*", metavar="FILE",
        help="gem5-style text traces or DBITRACE containers",
    )
    ingest_parser.add_argument(
        "--registry", default="results/traces", metavar="DIR",
        help="trace registry directory (default: results/traces)",
    )
    ingest_parser.add_argument(
        "--name", default=None,
        help="registered name (single source only; default: file stem)",
    )
    ingest_parser.add_argument(
        "--format", dest="fmt", default="auto",
        choices=("auto", "gem5", "dbitrace"),
    )
    ingest_parser.add_argument("--block-bytes", type=int, default=64)
    ingest_parser.add_argument(
        "--gap-scale", type=int, default=None, metavar="TICKS",
        help="source ticks per simulated gap cycle (default: 1000)",
    )
    ingest_parser.add_argument(
        "--max-gap", type=int, default=None, metavar="CYCLES",
        help="clamp on one inter-reference gap (default: 10000)",
    )
    ingest_parser.add_argument(
        "--list", action="store_true", dest="list_traces",
        help="print the registry instead of ingesting",
    )

    args = parser.parse_args(argv)
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "check-diff":
        return _cmd_check_diff(args)
    if args.command == "conformance":
        return _cmd_conformance(args)
    if args.command == "dramcache":
        return _cmd_dramcache(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "reliability":
        return _cmd_reliability(args)
    if args.command == "timeline":
        return _cmd_timeline(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
