"""Command-line interface: ``python -m repro <command>``.

Commands:
    list        — benchmarks, mechanisms and scale profiles available.
    run         — simulate one benchmark under one mechanism, print metrics.
    experiment  — regenerate one paper artifact (fig6 fig7 fig8 table3
                  table6 table7 case-study replacement drrip).
    check-diff  — differentially validate every mechanism against the
                  untimed golden reference model (see repro.check).

``run`` and ``experiment`` accept ``--check {off,cheap,full}`` to enable the
runtime invariant engine (off by default; results are identical either way).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.analysis.scaling import SCALES
    from repro.mechanisms.registry import MECHANISM_NAMES
    from repro.workloads.spec import profile_names

    print("benchmarks: ", ", ".join(profile_names()))
    print("mechanisms: ", ", ".join(MECHANISM_NAMES))
    print("scales:     ", ", ".join(sorted(SCALES)))
    return 0


def _cmd_run(args) -> int:
    from repro.analysis.scaling import SCALES
    from repro.sim.system import run_system

    scale = SCALES[args.scale]
    trace = scale.benchmark_trace(args.benchmark, refs=args.refs)
    result = run_system(
        scale.system_config(args.mechanism), [trace], check=args.check
    )
    print(f"benchmark          {args.benchmark}")
    print(f"mechanism          {args.mechanism}")
    print(f"IPC                {result.ipc[0]:.4f}")
    print(f"write row hit rate {result.write_row_hit_rate:.2%}")
    print(f"read row hit rate  {result.read_row_hit_rate:.2%}")
    print(f"tag lookups / ki   {result.tag_lookups_pki:.1f}")
    print(f"memory WPKI        {result.memory_wpki:.1f}")
    print(f"LLC MPKI           {result.llc_mpki:.1f}")
    print(f"events processed   {result.events_processed}")
    return 0


def make_sweep_runner(args):
    """Build the SweepRunner the --workers/--cache flags describe."""
    from repro.analysis.runner import DEFAULT_CACHE_DIR, SweepRunner, stderr_progress

    return SweepRunner(
        workers=args.workers,
        cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
        use_cache=not args.no_cache,
        progress=None if args.quiet else stderr_progress,
        check=getattr(args, "check", "off"),
    )


def _cmd_experiment(args) -> int:
    from repro.analysis import experiments
    from repro.analysis.scaling import SCALES

    scale = SCALES[args.scale]
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    sweep = make_sweep_runner(args)
    runners = {
        "fig6": lambda: "\n\n".join(
            r.to_text()
            for _k, r in sorted(
                experiments.run_figure6(
                    scale, benchmarks=benchmarks, runner=sweep
                ).items()
            )
        ),
        "fig7": lambda: experiments.run_figure7(scale, runner=sweep).to_text(),
        "fig8": lambda: experiments.run_figure8(scale, runner=sweep).to_text(),
        "table3": lambda: experiments.run_table3(scale, runner=sweep).to_text(),
        "table6": lambda: experiments.run_table6(scale, runner=sweep).to_text(),
        "table7": lambda: experiments.run_table7(scale, runner=sweep).to_text(),
        "case-study": lambda: experiments.run_case_study(
            scale, runner=sweep).to_text(),
        "replacement": lambda: experiments.run_dbi_replacement_study(
            scale, runner=sweep).to_text(),
        "drrip": lambda: experiments.run_drrip_study(
            scale, runner=sweep).to_text(),
    }
    if args.name not in runners:
        print(f"unknown experiment {args.name!r}; choose from {sorted(runners)}",
              file=sys.stderr)
        return 2
    try:
        print(runners[args.name]())
    finally:
        sweep.close()
    if not args.quiet:
        print(sweep.summary(), file=sys.stderr)
    return 0


def _cmd_check_diff(args) -> int:
    from repro.analysis.scaling import SCALES
    from repro.check import run_check_diff
    from repro.mechanisms.registry import MECHANISM_NAMES

    scale = SCALES[args.scale]
    benchmarks = (args.benchmarks or "lbm").split(",")
    traces = [
        scale.benchmark_trace(name.strip(), refs=args.refs)
        for name in benchmarks
    ]
    mechanisms = (
        [m.strip() for m in args.mechanisms.split(",")]
        if args.mechanisms
        else list(MECHANISM_NAMES)
    )
    report = run_check_diff(traces, mechanisms=mechanisms)
    print(report.to_text())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show benchmarks/mechanisms/scales")

    run_parser = sub.add_parser("run", help="simulate one benchmark")
    run_parser.add_argument("benchmark")
    run_parser.add_argument("mechanism")
    run_parser.add_argument("--scale", default="quick")
    run_parser.add_argument("--refs", type=int, default=None)
    run_parser.add_argument(
        "--check", choices=("off", "cheap", "full"), default="off",
        help="runtime invariant checking level (default: off)",
    )

    exp_parser = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp_parser.add_argument("name")
    exp_parser.add_argument("--scale", default="quick")
    exp_parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default: cpu_count - 1; "
             "0/1 runs jobs inline)",
    )
    exp_parser.add_argument(
        "--cache-dir", default=None,
        help="sweep result cache directory (default: results/sweep_cache)",
    )
    exp_parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk sweep cache",
    )
    exp_parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark subset (fig6 only)",
    )
    exp_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines on stderr",
    )
    exp_parser.add_argument(
        "--check", choices=("off", "cheap", "full"), default="off",
        help="runtime invariant checking level for every job (default: off)",
    )

    diff_parser = sub.add_parser(
        "check-diff",
        help="validate mechanisms against the untimed reference model",
    )
    diff_parser.add_argument("--scale", default="quick")
    diff_parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark traces to replay, one per core "
             "(default: lbm)",
    )
    diff_parser.add_argument(
        "--mechanisms", default=None,
        help="comma-separated mechanism subset (default: all)",
    )
    diff_parser.add_argument(
        "--refs", type=int, default=3000,
        help="memory references per trace (default: 3000)",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "check-diff":
        return _cmd_check_diff(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
