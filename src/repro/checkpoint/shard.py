"""Within-run sharding: one long run split into stitched epoch segments.

The SweepRunner parallelizes *across* cells; a full-scale campaign cell is
one long run, so the slowest cell bounds wall-clock. Sharding splits the
measurement region of a single run into ``count`` contiguous instruction
segments, simulates each in its own job (distributable across workers),
and stitches the per-segment stat deltas back into one
:class:`~repro.sim.system.SimulationResult`.

Each shard independently warms and quiesces the system (the same protocol
as sampled mode), functionally fast-forwards past the earlier shards'
segments (:func:`repro.checkpoint.sampled.fast_forward_core`), then runs
its own segment in detail, bracketing cumulative stats around it. The
result is a SMARTS-style approximation of the whole run: detailed coverage
of the entire measurement region, with segment boundaries warmed
functionally rather than carried over cycle-exactly. Shards are
deterministic, so a killed campaign re-simulates any lost shard to
identical bytes and the stitched cell stays byte-stable across resumes.

Per-shard results double as segment samples: :func:`shard_estimates` runs
the sampled-window Student-t estimator over the per-shard metric values,
which is where campaign surfaces get their confidence intervals for
sharded cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.checkpoint.sampled import (
    MetricEstimate,
    _estimate,
    _read_raw_stats,
    _synthesize_result,
    _window_delta,
    fast_forward_core,
)
from repro.checkpoint.snapshot import CheckpointError
from repro.checkpoint.warm import quiesce, rebase_measurement, run_until_warm
from repro.sim.system import SimulationResult, System, SystemConfig

#: Detailed-run granularity: the segment boundary is checked every chunk.
SHARD_CHUNK_CYCLES = 1_000


@dataclass(frozen=True)
class ShardSpec:
    """Which contiguous segment of the measurement region this job covers."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 2:
            raise ValueError(f"sharding needs count >= 2, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index {self.index} out of range for {self.count}"
            )

    def key(self) -> str:
        """Stable cache-key component for this shard."""
        return f"{self.index}/{self.count}"

    def to_dict(self) -> Dict:
        return {"index": self.index, "count": self.count}

    @classmethod
    def from_dict(cls, data: Dict) -> "ShardSpec":
        return cls(index=data["index"], count=data["count"])


def run_shard(
    config: SystemConfig, traces: Sequence, spec: ShardSpec
) -> SimulationResult:
    """Simulate one segment of the run and return its stat deltas.

    Warm → quiesce → rebase, functionally skip the first
    ``index/count`` of each core's measurement span, then run the segment
    in detail. The last shard runs until every core finishes measuring, so
    the union of segments covers the whole region.
    """
    system = System(config, traces)
    if system.check_engine is not None:
        raise CheckpointError(
            "sharded runs do not compose with the check engine: the "
            "functional fast-forward between segments mutates dirty state "
            "without the writeback events the ledger audits"
        )
    run_until_warm(system)
    quiesce(system)
    rebase_measurement(system)

    cores = system.cores
    queue = system.queue
    spans = [
        max(0, core.instruction_limit - core._instr_count) for core in cores
    ]
    for core, span in zip(cores, spans):
        skip = (span * spec.index) // spec.count
        if skip > 0 and not core.finished:
            fast_forward_core(system, core, skip)
    targets = [
        (span * (spec.index + 1)) // spec.count
        - (span * spec.index) // spec.count
        for span in spans
    ]

    start_stats = _read_raw_stats(system)
    start_instr = [core._instr_count for core in cores]
    start_cycle = queue.now
    for core in cores:
        core.unpause()
    last = spec.index == spec.count - 1
    while True:
        before = queue.events_processed
        queue.run(until=queue.now + SHARD_CHUNK_CYCLES)
        if system._measured >= len(cores):
            break
        if queue.events_processed == before:
            break  # queue drained without measuring out: nothing left to do
        if not last and all(
            core.finished
            or core._instr_count - start_instr[index] >= targets[index]
            for index, core in enumerate(cores)
        ):
            break
    # Bracket at the chunk boundary, before the drain (same rationale as
    # sampled windows: the quiesce's forced flush is not steady-state work).
    end_stats = _read_raw_stats(system)
    end_instr = [core._instr_count for core in cores]
    window = _window_delta(
        start_stats, end_stats, start_instr, end_instr,
        cycles=max(1, queue.now - start_cycle),
    )
    if window.instructions <= 0:
        raise CheckpointError(
            f"shard {spec.key()} issued no instructions (measurement region "
            "shorter than the shard grid; lower the shard count)"
        )
    return _synthesize_result(system, [window])


def stitch_shards(results: Sequence[SimulationResult]) -> SimulationResult:
    """Merge per-shard results into one whole-run result.

    Counters, rate ``.hits``/``.total`` and dist ``.count`` components sum;
    rate ratios and dist means are recomputed from the summed components;
    per-core instructions and cycles sum, and IPC is recomputed. Key order
    follows first appearance, so stitching is deterministic.
    """
    if not results:
        raise ValueError("nothing to stitch")
    first = results[0]
    num_cores = len(first.ipc)
    for result in results[1:]:
        if result.mechanism != first.mechanism:
            raise ValueError(
                f"cannot stitch shards of different mechanisms "
                f"({first.mechanism!r} vs {result.mechanism!r})"
            )
        if list(result.trace_names) != list(first.trace_names):
            raise ValueError("cannot stitch shards of different workloads")

    sums: Dict[str, float] = {}
    dist_totals: Dict[str, float] = {}
    for result in results:
        for key, value in result.stats.items():
            sums[key] = sums.get(key, 0) + value
            if key.endswith(".mean"):
                count = result.stats.get(f"{key[:-5]}.count", 0)
                dist_totals[key] = dist_totals.get(key, 0.0) + value * count

    stats: Dict[str, float] = {}
    for key, value in sums.items():
        if f"{key}.hits" in sums and f"{key}.total" in sums:
            total = sums[f"{key}.total"]
            stats[key] = sums[f"{key}.hits"] / total if total else 0.0
        elif key.endswith(".mean"):
            count = sums.get(f"{key[:-5]}.count", 0)
            stats[key] = dist_totals.get(key, 0.0) / count if count else 0.0
        else:
            stats[key] = value

    instructions = [
        sum(result.instructions[core] for result in results)
        for core in range(num_cores)
    ]
    cycles = [
        sum(result.cycles[core] for result in results)
        for core in range(num_cores)
    ]
    return SimulationResult(
        mechanism=first.mechanism,
        trace_names=list(first.trace_names),
        ipc=[
            instr / cyc if cyc else 0.0
            for instr, cyc in zip(instructions, cycles)
        ],
        cycles=cycles,
        instructions=instructions,
        total_instructions_issued=max(1, sum(instructions)),
        stats=stats,
        events_processed=sum(result.events_processed for result in results),
    )


def shard_estimates(
    results: Sequence[SimulationResult], rel_ci_floor: float = 0.0
) -> Dict[str, MetricEstimate]:
    """Student-t 95% estimates over per-shard metric values.

    Treats each segment as one sample of the run's steady state — the same
    estimator the sampled-window mode uses, so sharded campaign cells
    surface comparable confidence intervals.
    """
    series: Dict[str, List[float]] = {}
    for result in results:
        cycles = result.cycles[0] if result.cycles else 0
        if cycles:
            series.setdefault("ipc", []).append(
                sum(result.instructions) / cycles
            )
        for name in ("write_row_hit_rate", "read_row_hit_rate"):
            total = result.stats.get(f"dram.{name}.total", 0)
            if total:
                series.setdefault(name, []).append(
                    result.stats.get(f"dram.{name}.hits", 0) / total
                )
    return {
        name: _estimate(values, rel_ci_floor)
        for name, values in series.items()
        if values
    }
