"""SMARTS-style sampled simulation: detailed windows + functional fast-forward.

Instead of simulating the whole measurement region in detail, sampled mode
alternates:

* a **detailed window** of ``window_cycles`` simulated cycles, driven by the
  normal event-driven model — per-metric values are taken as stat *deltas*
  bracketed by the window (state pollution from fast-forwarding is excluded
  by construction);
* a **functional fast-forward** that advances each core's trace cursor by
  its share of the remaining instructions, warming the L1/L2/LLC contents,
  replacement state and dirty bits (in-tag or DBI) without events, timing,
  or stat-visible side effects inside any window.

Per-window metric values yield a mean and a Student-t confidence interval
(95%); a relative half-width floor absorbs the small bias the functional
warming cannot remove. The summed window deltas also synthesize an ordinary
:class:`~repro.sim.system.SimulationResult`, so sampled runs drop into the
experiment tables unchanged.

Sampled results approximate full-run results (validated against full-run
goldens by ``tests/checkpoint/test_sampled.py``); they are never
byte-identical, so sweep-cache keys include the sampled parameters.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checkpoint.snapshot import CheckpointError
from repro.checkpoint.warm import quiesce, rebase_measurement, run_until_warm
from repro.sim.system import SimulationResult, System, SystemConfig

#: Two-sided 95% Student-t critical values by degrees of freedom; beyond the
#: table the normal approximation is used.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value (normal approximation past df=30)."""
    if df < 1:
        raise ValueError("need at least two samples for an interval")
    return _T95.get(df, 1.960)


@dataclass(frozen=True)
class SampledConfig:
    """Knobs of one sampled run.

    Attributes:
        windows: number of detailed measurement windows.
        window_cycles: simulated cycles per measured detailed window.
        warmup_cycles: detailed cycles run after each fast-forward *before*
            the stat bracket opens (SMARTS "detailed warming"): refills the
            instruction window, MSHRs and DRAM queues so the measured window
            sees steady-state timing, and absorbs the burst of writebacks a
            fast-forward's dirty-state adoption can trigger.
        rel_ci_floor: minimum confidence-interval half-width as a fraction
            of the estimate — absorbs residual functional-warming bias so a
            lucky low-variance sample cannot claim implausible precision.
    """

    windows: int = 8
    window_cycles: int = 2_000
    warmup_cycles: int = 2_000
    rel_ci_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.windows < 2:
            raise ValueError("sampled mode needs at least 2 windows")
        if self.window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles must be non-negative")
        if not 0.0 <= self.rel_ci_floor < 1.0:
            raise ValueError("rel_ci_floor must be in [0, 1)")

    def key(self) -> str:
        """Stable cache-key component for this parameterization."""
        return (
            f"windows={self.windows},window_cycles={self.window_cycles},"
            f"warmup_cycles={self.warmup_cycles},"
            f"rel_ci_floor={self.rel_ci_floor}"
        )

    @classmethod
    def parse(cls, spec: str) -> "SampledConfig":
        """Build from a CLI spec like ``"windows=8,window_cycles=2000"``."""
        if not spec or spec in ("1", "true", "default"):
            return cls()
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad --sampled component {part!r}; expected key=value"
                )
            key, value = part.split("=", 1)
            key = key.strip()
            if key not in (
                "windows", "window_cycles", "warmup_cycles", "rel_ci_floor"
            ):
                raise ValueError(f"unknown --sampled knob {key!r}")
            kwargs[key] = float(value) if key == "rel_ci_floor" else int(value)
        return cls(**kwargs)


@dataclass(frozen=True)
class MetricEstimate:
    """Mean and 95% confidence interval of one metric over the windows."""

    mean: float
    ci_low: float
    ci_high: float
    samples: int

    def covers(self, value: float) -> bool:
        return self.ci_low <= value <= self.ci_high

    def to_dict(self) -> Dict:
        return {
            "mean": self.mean,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "samples": self.samples,
        }


@dataclass
class SampledResult:
    """Outcome of a sampled run: point estimates plus per-metric intervals."""

    result: SimulationResult
    estimates: Dict[str, MetricEstimate]
    windows_run: int
    detailed_instructions: int
    skipped_instructions: int
    sampled: SampledConfig

    def to_dict(self) -> Dict:
        return {
            "windows_run": self.windows_run,
            "detailed_instructions": self.detailed_instructions,
            "skipped_instructions": self.skipped_instructions,
            "estimates": {
                name: estimate.to_dict()
                for name, estimate in self.estimates.items()
            },
            "result": self.result.to_dict(),
        }


# -------------------------------------------------------- stat bracketing


def _read_raw_stats(system: System) -> Tuple[Dict, Dict, Dict]:
    """Raw cumulative values: counters, rate (hits, total), dist (count, sum)."""
    counters: Dict[str, int] = {}
    rates: Dict[str, Tuple[int, int]] = {}
    dists: Dict[str, Tuple[int, int]] = {}
    for group in system._all_stat_groups():
        prefix = group.name
        for counter in group._counters.values():
            counters[f"{prefix}.{counter.name}"] = counter.value
        for rate in group._rates.values():
            rates[f"{prefix}.{rate.name}"] = (rate.hits, rate.total)
        for dist in group._distributions.values():
            dists[f"{prefix}.{dist.name}"] = (dist.count, dist.total)
    return counters, rates, dists


@dataclass
class _Window:
    """Deltas of one detailed window."""

    cycles: int
    instructions: int
    per_core_instructions: List[int]
    counters: Dict[str, int]
    rates: Dict[str, Tuple[int, int]]
    dists: Dict[str, Tuple[int, int]]

    def counter(self, key: str) -> int:
        return self.counters.get(key, 0)

    def metric_values(self) -> Dict[str, Optional[float]]:
        """Per-window values of the headline metrics (None = no signal)."""
        instr = self.instructions
        values: Dict[str, Optional[float]] = {
            "ipc": instr / self.cycles if self.cycles else None,
        }
        if instr > 0:
            values["tag_lookups_pki"] = 1000.0 * self.counter("mech.tag_lookups") / instr
            values["memory_wpki"] = (
                1000.0 * self.counter("dram.dram_writes_performed") / instr
            )
            values["llc_mpki"] = 1000.0 * (
                self.counter("mech.read_misses")
                + self.counter("mech.bypassed_lookups")
                - self.counter("mech.bypassed_hits")
            ) / instr
        else:
            values["tag_lookups_pki"] = None
            values["memory_wpki"] = None
            values["llc_mpki"] = None
        for name, key in (
            ("write_row_hit_rate", "dram.write_row_hit_rate"),
            ("read_row_hit_rate", "dram.read_row_hit_rate"),
        ):
            hits, total = self.rates.get(key, (0, 0))
            values[name] = hits / total if total else None
        return values


def _window_delta(
    start: Tuple[Dict, Dict, Dict],
    end: Tuple[Dict, Dict, Dict],
    start_instr: List[int],
    end_instr: List[int],
    cycles: int,
) -> _Window:
    counters = {
        key: value - start[0].get(key, 0) for key, value in end[0].items()
    }
    rates = {
        key: (
            hits - start[1].get(key, (0, 0))[0],
            total - start[1].get(key, (0, 0))[1],
        )
        for key, (hits, total) in end[1].items()
    }
    dists = {
        key: (
            count - start[2].get(key, (0, 0))[0],
            total - start[2].get(key, (0, 0))[1],
        )
        for key, (count, total) in end[2].items()
    }
    per_core = [e - s for s, e in zip(start_instr, end_instr)]
    return _Window(
        cycles=cycles,
        instructions=sum(per_core),
        per_core_instructions=per_core,
        counters=counters,
        rates=rates,
        dists=dists,
    )


# --------------------------------------------------- functional fast-forward


def _functional_mark_dirty(mechanism, addr: int) -> None:
    if mechanism.write_through:
        return  # the write went through to memory; no dirty state to keep
    if mechanism.uses_tag_dirty_bits:
        mechanism.llc.mark_dirty(addr)
        return
    # DBI: entry evictions drop their bits; the blocks stay cached (clean)
    # and their writebacks have no timing side to model functionally.
    mechanism.dbi.mark_dirty(addr)


def _functional_evicted(mechanism, evicted) -> None:
    if evicted.dirty:
        return  # functional writeback to memory: nothing to model
    if not mechanism.uses_tag_dirty_bits:
        dbi = getattr(mechanism, "dbi", None)
        if dbi is not None and dbi.peek_dirty(evicted.addr):
            dbi.mark_clean(evicted.addr)


def _functional_llc_read(mechanism, core_id: int, addr: int) -> None:
    llc = mechanism.llc
    if llc.lookup(addr, core_id):
        return
    evicted = llc.insert(addr, core_id=core_id, dirty=False)
    if evicted is not None:
        _functional_evicted(mechanism, evicted)


def _functional_llc_writeback(mechanism, core_id: int, addr: int) -> None:
    llc = mechanism.llc
    if llc.contains(addr):
        llc.touch(addr, core_id)
        _functional_mark_dirty(mechanism, addr)
        return
    dirty_in_tag = mechanism.uses_tag_dirty_bits and not mechanism.write_through
    evicted = llc.insert(addr, core_id=core_id, dirty=dirty_in_tag)
    if evicted is not None:
        _functional_evicted(mechanism, evicted)
    if not dirty_in_tag:
        _functional_mark_dirty(mechanism, addr)


def _functional_l1_writeback(hierarchy, mechanism, core_id: int, addr: int) -> None:
    l2 = hierarchy.l2s[core_id]
    if l2.contains(addr):
        l2.mark_dirty(addr)
        l2.touch(addr, core_id)
        return
    evicted = l2.insert(addr, core_id=core_id, dirty=True)
    if evicted is not None and evicted.dirty:
        _functional_llc_writeback(mechanism, core_id, evicted.addr)


def _functional_access(
    hierarchy, mechanism, core_id: int, addr: int, is_write: bool
) -> None:
    """One memory reference through the hierarchy, contents-only."""
    l1 = hierarchy.l1s[core_id]
    if l1.lookup(addr, core_id):
        if is_write:
            l1.mark_dirty(addr)
        return
    l2 = hierarchy.l2s[core_id]
    if not l2.lookup(addr, core_id):
        _functional_llc_read(mechanism, core_id, addr)
        evicted = l2.insert(addr, core_id=core_id, dirty=False)
        if evicted is not None and evicted.dirty:
            _functional_llc_writeback(mechanism, core_id, evicted.addr)
    evicted = l1.insert(addr, core_id=core_id, dirty=False)
    if evicted is not None and evicted.dirty:
        _functional_l1_writeback(hierarchy, mechanism, core_id, evicted.addr)
    if is_write:
        l1.mark_dirty(addr)


def fast_forward_core(system: System, core, instructions: int) -> int:
    """Advance one (paused, drained) core functionally by ``instructions``.

    Replays the trace into the cache contents and dirty state without
    events or timing; the core's issue pacing is re-anchored at the current
    cycle. Returns the instructions actually skipped.
    """
    if instructions <= 0:
        return 0
    hierarchy = system.hierarchy
    mechanism = system.mechanism
    records = core._records
    pos = core._pos
    count = core._instr_count
    target = count + instructions
    core_id = core.core_id
    while count < target:
        gap, is_write, addr = records[pos]
        pos += 1
        if pos >= len(records):
            pos = 0  # replay the trace, as the detailed core does
        count += gap + 1
        _functional_access(hierarchy, mechanism, core_id, addr, is_write)
    skipped = count - core._instr_count
    core._pos = pos
    core._instr_count = count
    core._issue_time = system.queue.now
    return skipped


# ------------------------------------------------------------- window loop


def _estimate(values: Sequence[float], rel_floor: float) -> MetricEstimate:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        half = abs(mean)  # degenerate: one sample carries no spread information
    else:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = t_critical_95(n - 1) * math.sqrt(variance / n)
    half = max(half, rel_floor * abs(mean))
    return MetricEstimate(
        mean=mean, ci_low=mean - half, ci_high=mean + half, samples=n
    )


def _synthesize_result(
    system: System, windows: List[_Window]
) -> SimulationResult:
    """An ordinary SimulationResult from the summed window deltas."""
    num_cores = len(system.cores)
    per_core_instr = [0] * num_cores
    total_cycles = 0
    counters: Dict[str, int] = {}
    rates: Dict[str, List[int]] = {}
    dists: Dict[str, List[int]] = {}
    for window in windows:
        total_cycles += window.cycles
        for index in range(num_cores):
            per_core_instr[index] += window.per_core_instructions[index]
        for key, value in window.counters.items():
            counters[key] = counters.get(key, 0) + value
        for key, (hits, total) in window.rates.items():
            entry = rates.setdefault(key, [0, 0])
            entry[0] += hits
            entry[1] += total
        for key, (count, total) in window.dists.items():
            entry = dists.setdefault(key, [0, 0])
            entry[0] += count
            entry[1] += total

    stats: Dict[str, float] = dict(counters)
    for key, (hits, total) in rates.items():
        stats[key] = hits / total if total else 0.0
        stats[f"{key}.hits"] = hits
        stats[f"{key}.total"] = total
    for key, (count, total) in dists.items():
        stats[f"{key}.mean"] = total / count if count else 0.0
        stats[f"{key}.count"] = count

    total_instructions = sum(per_core_instr)
    return SimulationResult(
        mechanism=system.config.mechanism,
        trace_names=[trace.name for trace in system.traces],
        ipc=[
            instr / total_cycles if total_cycles else 0.0
            for instr in per_core_instr
        ],
        cycles=[total_cycles] * num_cores,
        instructions=list(per_core_instr),
        total_instructions_issued=max(1, total_instructions),
        stats=stats,
        events_processed=system.queue.events_processed,
    )


def run_windows(system: System, sampled: SampledConfig) -> SampledResult:
    """Drive a warmed, quiesced system through the detailed-window schedule.

    ``system`` must be paused with all traffic drained (a fresh output of
    :func:`~repro.checkpoint.warm.make_warm_system`, a restored warm image,
    or a just-forked cell that has been re-paused); its measurement window
    must be rebased at the current cycle.
    """
    if system.check_engine is not None:
        raise CheckpointError(
            "sampled mode does not compose with the check engine: functional "
            "fast-forward mutates dirty state without the writeback events "
            "the ledger audits"
        )
    if not system.hierarchy.is_idle():
        raise CheckpointError("sampled mode requires a quiesced system")

    cores = system.cores
    queue = system.queue
    spans = []
    for core in cores:
        remaining = max(0, core.instruction_limit - core._instr_count)
        spans.append(max(1, remaining // sampled.windows))

    windows: List[_Window] = []
    detailed = 0
    skipped = 0
    for _ in range(sampled.windows):
        warm_start_instr = [core._instr_count for core in cores]
        for core in cores:
            core.unpause()
        # Detailed warming (unbracketed): refill the pipeline, MSHRs and
        # DRAM queues after the quiesce/fast-forward so the measured window
        # sees steady-state timing. Stats read *after* this sub-window.
        if sampled.warmup_cycles:
            queue.run(until=queue.now + sampled.warmup_cycles)
            if system._measured >= len(cores):
                quiesce(system)
                break
        start_stats = _read_raw_stats(system)
        start_instr = [core._instr_count for core in cores]
        start_cycle = queue.now
        queue.run(until=queue.now + sampled.window_cycles)
        # Bracket closes at the until-boundary, *before* the drain: the
        # quiesce below force-flushes the write buffer and runs zero-issue
        # cycles, neither of which a steady-state window would contain.
        # In-flight work crossing the boundary is symmetric window-to-window.
        end_stats = _read_raw_stats(system)
        end_instr = [core._instr_count for core in cores]
        window = _window_delta(
            start_stats, end_stats, start_instr, end_instr,
            # == window_cycles unless the queue drained early (last window).
            cycles=max(1, min(sampled.window_cycles, queue.now - start_cycle)),
        )
        all_measured = system._measured >= len(cores)
        quiesce(system)  # drain between windows, before the next fast-forward
        if window.instructions > 0:
            windows.append(window)
            detailed += window.instructions
        if all_measured:
            break
        for index, core in enumerate(cores):
            if core.finished:
                continue
            issued = end_instr[index] - warm_start_instr[index]
            gap = spans[index] - issued
            if gap > 0:
                skipped += fast_forward_core(system, core, gap)

    if not windows:
        raise CheckpointError("no detailed window issued any instructions")

    series: Dict[str, List[float]] = {}
    for window in windows:
        for name, value in window.metric_values().items():
            if value is not None:
                series.setdefault(name, []).append(value)
    estimates = {
        name: _estimate(values, sampled.rel_ci_floor)
        for name, values in series.items()
        if values
    }
    return SampledResult(
        result=_synthesize_result(system, windows),
        estimates=estimates,
        windows_run=len(windows),
        detailed_instructions=detailed,
        skipped_instructions=skipped,
        sampled=sampled,
    )


def run_sampled(
    config: SystemConfig,
    traces: Sequence,
    sampled: SampledConfig,
    max_warm_events: Optional[int] = None,
) -> SampledResult:
    """One-shot sampled run: warm under ``config``'s own mechanism, sample.

    Unlike fork-from-warm there is no mechanism swap — the only
    approximation is the sampling itself.
    """
    system = System(config, traces)
    run_until_warm(system, max_events=max_warm_events)
    quiesce(system)
    rebase_measurement(system)
    return run_windows(system, sampled)
