"""Fork a warm image into a per-mechanism cell (fork-from-warm sweeps).

A sweep group (one benchmark × one shared config, varying only the LLC
mechanism) warms *once* under the group's normalized mechanism (see
:func:`~repro.checkpoint.warm.warm_config_for`), snapshots at the warmup
boundary, and forks each cell from the shared image: restore a fresh copy,
swap in the cell's mechanism, adopt the warm dirty state, and resume. The
0.4 × run warmup cost is paid once per group instead of once per cell.

Dirty-state adoption across mechanism families:

* tag-dirty mechanisms (baseline/tadip/dawb/vwq): the in-tag dirty bits of
  the warm image carry over unchanged;
* DBI mechanisms: every in-tag dirty bit moves into the fresh DBI
  (``mark_clean`` on the tag, ``mark_dirty`` on the DBI). DBI capacity
  overflow during adoption triggers real entry evictions whose writebacks
  issue once the fork resumes — exactly the behaviour of a DBI that had
  tracked the warm working set;
* write-through (skipcache): dirty bits are dropped; the adopted blocks
  count as already written back (their data went to memory when the warm
  run would have written through).

The die-stacked DRAM-cache level (when present) sits *outside* the fork:
its dirty domain belongs to the level, not to the LLC mechanism, so cells
of one group must share the exact level config and the warm level's
contents and dirty state carry over unchanged. A fork that changes the
level's geometry or dirty backend is refused.

Forked results are a documented approximation of cold per-cell runs (the
quiesce at the warm boundary perturbs timing, and the warm phase ran under
the group mechanism), so fork-mode sweep results are cached under a key that
includes the fork parameters — they never collide with cold-run entries.
"""

from __future__ import annotations

from repro.checkpoint.snapshot import CheckpointError
from repro.checkpoint.warm import rebase_measurement
from repro.mechanisms.registry import make_mechanism
from repro.sim.system import System, SystemConfig
from repro.utils.rng import DeterministicRng


def _adopt_dirty_state(new_mechanism, llc) -> None:
    """Move the warm image's in-tag dirty bits into the new mechanism."""
    if new_mechanism.uses_tag_dirty_bits and not new_mechanism.write_through:
        return  # in-tag bits are already exactly where this mechanism keeps them
    dirty = [block.addr for block in llc.iter_valid_blocks() if block.dirty]
    for addr in dirty:
        llc.mark_clean(addr)
    if new_mechanism.write_through:
        return  # skipcache: adopted blocks count as already written through
    for addr in dirty:
        # DBI capacity overflow evicts entries here; their writeback probes
        # queue behind the tag port and fire once the fork resumes.
        new_mechanism._mark_dirty(addr)


def fork_system(system: System, config: SystemConfig) -> System:
    """Turn a restored warm image into a ready-to-resume cell of ``config``.

    ``system`` must be a freshly restored (never previously forked) warm
    image: paused, drained, produced by
    :func:`~repro.checkpoint.warm.make_warm_system`. It is mutated in place
    and returned.
    """
    base = system.config
    if config.num_cores != base.num_cores:
        raise CheckpointError(
            f"fork config has {config.num_cores} cores, warm image has "
            f"{base.num_cores}"
        )
    if config.resolve_llc() != base.resolve_llc():
        raise CheckpointError(
            "fork config resolves a different LLC than the warm image; "
            "cells of one fork group must share every non-mechanism knob"
        )
    if config.dram_cache != base.dram_cache:
        raise CheckpointError(
            "fork config changes the DRAM-cache level; the stacked level's "
            "warm contents and dirty state cannot be adopted across "
            "geometries or dirty backends"
        )
    if not system.hierarchy.is_idle():
        raise CheckpointError("fork requires a quiesced warm image")
    if system.dram_cache is not None and not system.dram_cache.is_idle():
        raise CheckpointError("fork requires a quiesced warm image")
    if system.check_engine is not None or system.telemetry is not None:
        raise CheckpointError(
            "fork does not compose with check engines or telemetry riders"
        )

    rng = DeterministicRng(config.seed)
    mechanism = make_mechanism(
        config.mechanism,
        queue=system.queue,
        llc=system.llc,
        port=system.port,
        memory=system.dram_cache or system.memory,
        mapper=system.memory.mapper,
        num_cores=config.num_cores,
        dbi_config=config.dbi_config,
        dbi_alpha=config.dbi_alpha,
        dbi_granularity=config.dbi_granularity,
        dbi_replacement=config.dbi_replacement,
        predictor_epoch_cycles=config.predictor_epoch_cycles,
        rng=rng.derive("dbi-policy"),
    )
    _adopt_dirty_state(mechanism, system.llc)
    system.mechanism = mechanism
    system.hierarchy.mechanism = mechanism
    system.config = config
    rebase_measurement(system)
    for core in system.cores:
        core.unpause()
    return system
