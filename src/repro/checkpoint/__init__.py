"""Checkpoint/restore, fork-from-warm sweeps, and sampled simulation.

Three layers, bottom-up:

* :mod:`repro.checkpoint.snapshot` — serialize a live system to a versioned,
  self-verifying ``.ckpt`` container and restore it byte-identically;
* :mod:`repro.checkpoint.warm` / :mod:`repro.checkpoint.fork` — produce one
  warm image per sweep group and fork per-mechanism cells from it;
* :mod:`repro.checkpoint.sampled` — SMARTS-style detailed windows with
  functional fast-forward and per-metric confidence intervals.

See ``docs/architecture.md`` §11 for the protocol and its guarantees.
"""

from repro.checkpoint.fork import fork_system
from repro.checkpoint.sampled import (
    MetricEstimate,
    SampledConfig,
    SampledResult,
    run_sampled,
    run_windows,
)
from repro.checkpoint.snapshot import (
    SNAPSHOT_FORMAT,
    CheckpointError,
    load_snapshot,
    restore_system,
    save_snapshot,
    snapshot_system,
    verify_snapshot,
)
from repro.checkpoint.warm import (
    make_warm_system,
    quiesce,
    rebase_measurement,
    run_until_warm,
    warm_config_for,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "CheckpointError",
    "MetricEstimate",
    "SampledConfig",
    "SampledResult",
    "fork_system",
    "load_snapshot",
    "make_warm_system",
    "quiesce",
    "rebase_measurement",
    "restore_system",
    "run_sampled",
    "run_until_warm",
    "run_windows",
    "save_snapshot",
    "snapshot_system",
    "verify_snapshot",
    "warm_config_for",
]
