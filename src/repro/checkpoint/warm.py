"""Warm-image production: run to the warmup boundary and quiesce.

Fork-from-warm (see :mod:`repro.checkpoint.fork`) snapshots one run per
(benchmark, shared-config) group at its warmup boundary and forks every
per-mechanism cell from that image. The helpers here produce that image:

* :func:`run_until_warm` drives the queue in bounded chunks until every core
  has crossed its warmup boundary (chunked so the hot ``run()`` loop does
  the work, with only a per-chunk flag poll on top);
* :func:`quiesce` pauses instruction issue and drains all in-flight traffic
  so the snapshot's mechanism is idle — a forked mechanism swap must not
  leave events bound to the old mechanism object;
* :func:`rebase_measurement` zeroes every stat group and re-anchors the IPC
  measurement window at the (post-drain) current cycle.

The quiesce perturbs event timing relative to an uninterrupted run, so a
fork-from-warm result is a documented approximation (gem5-style checkpoint
methodology), *not* byte-identical to a cold run of the same cell. Snapshots
taken without quiescing — plain ``run(max_events=N)`` boundaries — restore
byte-identically; that is what the restore-equivalence tests and CI stage
enforce.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.checkpoint.snapshot import CheckpointError
from repro.sim.system import System, SystemConfig

#: Events per ``queue.run`` chunk while polling for the warmup boundary.
WARM_CHUNK_EVENTS = 25_000

#: Default event budget for draining in-flight traffic during a quiesce.
QUIESCE_EVENT_BUDGET = 2_000_000


def warm_config_for(config: SystemConfig) -> SystemConfig:
    """The shared-group config a warm image is produced under.

    The mechanism is normalized away (cells of one group differ only by
    mechanism): groups whose LLC runs TA-DIP warm under ``tadip``; an LRU
    LLC (the baseline, or an explicit override) warms under ``baseline``.
    The resolved LLC config is pinned so the group key — and the fork-time
    compatibility check — cannot drift with mechanism-dependent resolution.
    """
    resolved = config.resolve_llc()
    mechanism = "baseline" if resolved.replacement == "lru" else "tadip"
    return dataclasses.replace(
        config,
        mechanism=mechanism,
        llc=resolved,
        llc_replacement=resolved.replacement,
    )


def run_until_warm(
    system: System,
    chunk_events: int = WARM_CHUNK_EVENTS,
    max_events: Optional[int] = None,
) -> int:
    """Start the cores and run until every core crossed its warmup boundary.

    Returns the number of events fired. Overshoots the boundary by at most
    ``chunk_events`` (the boundary is detected between chunks); the chunk is
    capped near the warmup target so a run much shorter than the default
    chunk is not consumed whole between boundary polls.
    """
    # ~3-4 events fire per instruction, so a chunk of warm-target events
    # polls a tiny run several times before its boundary while leaving
    # full-size runs on the fast default.
    warm_target = sum(core.warmup_instructions for core in system.cores)
    if warm_target:
        chunk_events = max(1_000, min(chunk_events, warm_target))
    for core in system.cores:
        core.start()
    fired = 0
    while system._warmed < len(system.cores):
        if max_events is not None and fired >= max_events:
            raise CheckpointError(
                f"warmup boundary not reached within {max_events} events"
            )
        before = system.queue.events_processed
        system.queue.run(max_events=chunk_events)
        chunk = system.queue.events_processed - before
        fired += chunk
        if chunk == 0:
            raise CheckpointError(
                "event queue drained before the warmup boundary — "
                "warmup_fraction too close to the trace length?"
            )
    return fired


def quiesce(system: System, max_events: int = QUIESCE_EVENT_BUDGET) -> None:
    """Pause issue and drain every in-flight access and fill.

    On return the hierarchy is idle — no MSHR waiters, no pending LLC fills,
    no queued tag-port grants — so the event graph holds no callbacks bound
    to the mechanism and a fork can swap it out safely. The DRAM write
    buffer is deliberately *not* flushed: its entries are callback-free
    plain requests, and force-draining them would destroy the controller's
    steady state (sampled windows would start with an empty buffer and
    under-count write-drain interference). The cores stay paused —
    ``unpause()`` them (or fork, which does) to continue.
    """
    for core in system.cores:
        core.pause()

    def drained() -> bool:
        if not system.hierarchy.is_idle():
            return False
        # The DRAM-cache level's pending fills and overflow retries hold
        # event-graph callbacks too; a fork must find it just as idle.
        return system.dram_cache is None or system.dram_cache.is_idle()

    queue = system.queue
    fired = 0
    while not drained():
        if fired >= max_events:
            raise CheckpointError(
                f"system failed to quiesce within {max_events} events"
            )
        if not queue.step():
            break
        fired += 1
    if not drained():
        raise CheckpointError("event queue drained but traffic is still in flight")


def rebase_measurement(system: System) -> None:
    """Drop all statistics and restart IPC measurement at the current cycle.

    Called after a quiesce (whose drain pollutes the post-warmup-reset stats)
    and after a fork's mechanism swap, so every cell measures from the same
    clean anchor.
    """
    for group in system._all_stat_groups():
        group.reset()
    system._issued_at_reset = sum(
        core.instructions_issued for core in system.cores
    )
    for core in system.cores:
        core._measure_start_cycle = system.queue.now


def make_warm_system(
    config: SystemConfig,
    traces: Sequence,
    chunk_events: int = WARM_CHUNK_EVENTS,
    max_events: Optional[int] = None,
) -> System:
    """Build, warm and quiesce the shared image for ``config``'s fork group.

    The returned system runs under :func:`warm_config_for`'s normalized
    config, is paused and fully drained, and has its measurement window
    rebased — ready to :func:`~repro.checkpoint.snapshot.snapshot_system`.
    """
    system = System(warm_config_for(config), traces)
    run_until_warm(system, chunk_events=chunk_events, max_events=max_events)
    quiesce(system)
    rebase_measurement(system)
    return system
