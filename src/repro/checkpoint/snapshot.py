"""Snapshot protocol: serialize a live :class:`~repro.sim.system.System`.

A snapshot captures the *entire* simulation graph — event queue (with every
pending event), cores, L1/L2/LLC caches and replacement state, MSHRs, tag
port, mechanism (including DBI / predictor state), DRAM banks, controller and
write buffer — by pickling the ``System`` object. Every callback in the event
graph is a bound method or a :func:`functools.partial` of one (closures were
eliminated for exactly this reason), so the graph round-trips losslessly: a
restored system continues byte-identically to the uninterrupted run.

Two attachments are handled specially because they hold unpicklable state:

* the profiler (``queue.profiler``) times wall-clock, which is meaningless
  across a restore; it is detached for the snapshot and *not* restored.
* the telemetry sampler holds a file handle and probe lambdas; its plain
  counters (epoch cursor, previous-snapshot dict, emitted records) are
  captured separately and a fresh sampler is rebuilt around them on restore,
  so epoch numbering and deltas continue exactly where they left off. The
  restored sampler never reopens the original JSONL path (which would
  truncate it); pass ``jsonl_path`` to :func:`restore_system` to stream
  post-restore epochs somewhere new.

On-disk container (``.ckpt``)::

    DBICKPT\\0 | u32 header length | header JSON | zlib(pickle payload)

The header records the payload's SHA-256; :func:`load_snapshot` refuses any
container whose digest, magic or format does not check out by raising
:class:`CheckpointError` (a ``ValueError``, so sweep-cache-style quarantine
handling applies). Unpickling is restricted to this package's own modules
plus a small stdlib allowlist — a snapshot cannot smuggle in arbitrary
globals.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import struct
import zlib
from collections import deque
from typing import Dict, Optional

from repro.utils.atomic import atomic_write_bytes

#: Bump when the payload layout changes; readers reject newer formats.
SNAPSHOT_FORMAT = 1

MAGIC = b"DBICKPT\x00"

#: Non-``repro`` modules a snapshot payload may reference. Bound methods
#: pickle via ``builtins.getattr``; partials via ``functools``; the system
#: graph uses deques, Fractions and enums internally.
_ALLOWED_MODULES = frozenset(
    {
        "builtins",
        "collections",
        "_collections",
        "functools",
        "_functools",
        "fractions",
        "copyreg",
        "enum",
    }
)


class CheckpointError(ValueError):
    """A snapshot could not be taken, parsed or verified."""


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that only resolves simulator and allowlisted stdlib names."""

    def find_class(self, module: str, name: str):
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        if module in _ALLOWED_MODULES:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"snapshot references forbidden global {module}.{name}"
        )


# --------------------------------------------------------------- telemetry


def _capture_telemetry(sampler) -> Dict:
    """The sampler's plain state (everything but handles and probe lambdas)."""
    return {
        "config": sampler.config,
        "next_cycle": sampler.next_cycle,
        "last_cycle": sampler._last_cycle,
        "prev": dict(sampler._prev),
        "prev_instructions": sampler._prev_instructions,
        "epochs_emitted": sampler.epochs_emitted,
        "finalized": sampler._finalized,
        "records": list(sampler.records),
    }


def _rebuild_telemetry(system, state: Dict, jsonl_path: Optional[str]):
    """A fresh sampler continuing exactly where the captured one stopped."""
    import dataclasses

    from repro.telemetry.sampler import TelemetrySampler

    config = dataclasses.replace(state["config"], jsonl_path=jsonl_path)
    sampler = TelemetrySampler(
        config,
        groups=system._all_stat_groups(),
        counters=system._telemetry_counters(),
        gauges=system._telemetry_gauges(),
    )
    sampler.next_cycle = state["next_cycle"]
    sampler._last_cycle = state["last_cycle"]
    sampler._prev = dict(state["prev"])
    sampler._prev_instructions = state["prev_instructions"]
    sampler.epochs_emitted = state["epochs_emitted"]
    sampler._finalized = state["finalized"]
    sampler.records = deque(state["records"], maxlen=config.ring_size)
    return sampler


# ---------------------------------------------------------------- snapshot


def snapshot_system(system) -> bytes:
    """Serialize a live system into a self-verifying ``.ckpt`` container.

    The system is left exactly as it was (observational hooks are detached
    only for the duration of the pickle), so a run can be snapshotted
    mid-flight and continue.
    """
    profiler = system.queue.profiler
    sampler = system.telemetry
    telemetry_state = None
    system.queue.profiler = None
    if sampler is not None:
        telemetry_state = _capture_telemetry(sampler)
        system.telemetry = None
        system.queue.telemetry = None
    try:
        payload = pickle.dumps(
            {
                "format": SNAPSHOT_FORMAT,
                "system": system,
                "telemetry": telemetry_state,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except Exception as exc:  # unpicklable attachment, recursion, ...
        raise CheckpointError(f"snapshot failed: {exc}") from exc
    finally:
        system.queue.profiler = profiler
        if sampler is not None:
            system.telemetry = sampler
            system.queue.telemetry = sampler

    compressed = zlib.compress(payload, level=6)
    header = {
        "format": SNAPSHOT_FORMAT,
        "payload_sha256": hashlib.sha256(compressed).hexdigest(),
        "payload_bytes": len(compressed),
        "pickle_bytes": len(payload),
        "cycle": system.queue.now,
        "events_processed": system.queue.events_processed,
        "mechanism": system.config.mechanism,
        "traces": [trace.name for trace in system.traces],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return b"".join(
        (MAGIC, struct.pack("<I", len(header_bytes)), header_bytes, compressed)
    )


def _split_container(data: bytes, source: str) -> tuple:
    """Validate framing and digest; returns ``(header, compressed payload)``."""
    if len(data) < len(MAGIC) + 4 or not data.startswith(MAGIC):
        raise CheckpointError(f"{source}: not a DBI checkpoint (bad magic)")
    offset = len(MAGIC)
    (header_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    if offset + header_len > len(data):
        raise CheckpointError(f"{source}: truncated checkpoint header")
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{source}: corrupt checkpoint header") from exc
    if header.get("format", 0) > SNAPSHOT_FORMAT:
        raise CheckpointError(
            f"{source}: snapshot format {header.get('format')} is newer than "
            f"supported ({SNAPSHOT_FORMAT})"
        )
    payload = data[offset + header_len :]
    if len(payload) != header.get("payload_bytes"):
        raise CheckpointError(
            f"{source}: payload is {len(payload)} bytes, header says "
            f"{header.get('payload_bytes')}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(f"{source}: payload digest mismatch")
    return header, payload


def restore_system(data: bytes, jsonl_path: Optional[str] = None, source: str = "<bytes>"):
    """Rebuild a :class:`System` from :func:`snapshot_system` bytes.

    Args:
        data: the full container, framing included.
        jsonl_path: where the rebuilt telemetry sampler (if the snapshotted
            system carried one) should stream post-restore epochs. ``None``
            keeps it in-memory only — never the original path, which a
            reopen would truncate.
        source: label used in error messages (the file path, typically).
    """
    _header, compressed = _split_container(data, source)
    try:
        payload = zlib.decompress(compressed)
    except zlib.error as exc:
        raise CheckpointError(f"{source}: payload does not decompress") from exc
    try:
        envelope = _RestrictedUnpickler(io.BytesIO(payload)).load()
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"{source}: snapshot payload is corrupt: {exc}") from exc
    if not isinstance(envelope, dict) or "system" not in envelope:
        raise CheckpointError(f"{source}: snapshot payload has no system")
    system = envelope["system"]
    system.queue.profiler = None
    system.queue.telemetry = None
    system.telemetry = None
    state = envelope.get("telemetry")
    if state is not None:
        sampler = _rebuild_telemetry(system, state, jsonl_path)
        system.telemetry = sampler
        system.queue.telemetry = sampler
    return system


# -------------------------------------------------------------------- disk


def save_snapshot(system, path: str) -> Dict:
    """Atomically write a snapshot of ``system`` to ``path``; returns header.

    Goes through :func:`repro.utils.atomic.atomic_write_bytes` (fsync before
    rename), so a crash — even a power cut — leaves either no image or a
    complete, digest-verifiable one, never a torn container.
    """
    data = snapshot_system(system)
    header, _ = _split_container(data, str(path))
    atomic_write_bytes(path, data)
    return header


def load_snapshot(path: str, jsonl_path: Optional[str] = None):
    """Load and restore a system from a ``.ckpt`` file."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
    return restore_system(data, jsonl_path=jsonl_path, source=str(path))


def verify_snapshot(path: str) -> Dict:
    """Check framing and payload digest without unpickling; returns header."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
    header, _ = _split_container(data, str(path))
    return header
