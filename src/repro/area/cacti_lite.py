"""A calibrated CACTI-like analytical model for SRAM arrays.

The paper feeds its designs to CACTI 6.0; offline we use a small analytical
model with the standard first-order structure:

* area = bits × cell area × peripheral overhead. Tag arrays pay a constant
  factor over data arrays (comparators, wider peripheral logic); small
  arrays pay a size-dependent overhead because decoders/sense-amps do not
  shrink with the array.
* access latency grows with log2 of the array size.
* static power is proportional to area; dynamic energy per access grows
  with the square root of the array size (bitline/wordline lengths).

The constants are calibrated so the paper's headline CACTI results come out:
a 16 MB ECC-protected cache with an α=1/4 DBI shrinks ~8% (Section 6.3) and
the DBI adds well under 1% static and a few % dynamic power (Table 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive

#: SRAM cell area (um^2/bit), generic planar node.
CELL_AREA_UM2 = 0.10
#: Tag arrays are less dense than data arrays (match logic, ports).
TAG_AREA_FACTOR = 1.4
#: Small-array peripheral overhead: 1 + K / sqrt(kilobits).
SMALL_ARRAY_K = 4.0
#: Static power density (mW per mm^2), generic.
STATIC_MW_PER_MM2 = 20.0
#: Dynamic energy scale (pJ per access per sqrt(kilobit)).
DYNAMIC_PJ_SCALE = 0.9


@dataclass(frozen=True)
class ArrayModel:
    """One SRAM array (a data store, a tag store, or the DBI)."""

    name: str
    bits: int
    is_tag: bool = False

    def __post_init__(self) -> None:
        check_positive("bits", self.bits)

    @property
    def kilobits(self) -> float:
        return self.bits / 1024.0

    @property
    def peripheral_overhead(self) -> float:
        """Decoders/sense-amps dominate small arrays."""
        return 1.0 + SMALL_ARRAY_K / math.sqrt(max(self.kilobits, 1.0))

    @property
    def area_mm2(self) -> float:
        density = CELL_AREA_UM2 * (TAG_AREA_FACTOR if self.is_tag else 1.0)
        return self.bits * density * self.peripheral_overhead / 1e6

    @property
    def access_latency_cycles(self) -> int:
        """Log-size latency, calibrated to Table 1 (DBI 4, 2MB LLC tag 10)."""
        return max(1, round(1.1 * math.log2(max(self.kilobits, 2.0)) - 1))

    @property
    def static_power_mw(self) -> float:
        return self.area_mm2 * STATIC_MW_PER_MM2

    def dynamic_energy_pj(self) -> float:
        """Energy of one access."""
        return DYNAMIC_PJ_SCALE * math.sqrt(max(self.kilobits, 1.0))


@dataclass(frozen=True)
class CactiLite:
    """Area/power roll-up for a cache organization (a set of arrays)."""

    arrays: tuple

    @property
    def area_mm2(self) -> float:
        return sum(array.area_mm2 for array in self.arrays)

    @property
    def static_power_mw(self) -> float:
        return sum(array.static_power_mw for array in self.arrays)

    def dynamic_power_mw(self, accesses_per_cycle: dict, clock_ghz: float = 2.67):
        """Dynamic power given per-array access rates (accesses/cycle)."""
        total_pj_per_cycle = 0.0
        by_name = {array.name: array for array in self.arrays}
        for name, rate in accesses_per_cycle.items():
            if name not in by_name:
                raise KeyError(f"no array named {name!r}")
            total_pj_per_cycle += by_name[name].dynamic_energy_pj() * rate
        # pJ/cycle * cycles/s = pW ... scale to mW.
        return total_pj_per_cycle * clock_ghz * 1e9 / 1e9
