"""Table 4 / Table 5 / Section 6.3 computations.

Pure functions over the bit model and cacti-lite so benchmarks and tests can
regenerate the paper's storage/area/power tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

from repro.area.bits import CacheBitModel, DbiBitModel
from repro.area.cacti_lite import ArrayModel, CactiLite


@dataclass(frozen=True)
class Table4Row:
    """One row of paper Table 4."""

    alpha: Fraction
    tag_reduction_no_ecc: float
    cache_reduction_no_ecc: float
    tag_reduction_with_ecc: float
    cache_reduction_with_ecc: float


def compute_table4(
    cache_bytes: int = 16 * 1024 * 1024,
    associativity: int = 16,
    granularity: int = 64,
) -> List[Table4Row]:
    """Bit-storage cost reduction of a DBI cache vs conventional (Table 4)."""
    rows = []
    for alpha in (Fraction(1, 4), Fraction(1, 2)):
        values = {}
        for with_ecc in (False, True):
            cache = CacheBitModel(
                cache_bytes=cache_bytes,
                associativity=associativity,
                with_ecc=with_ecc,
            )
            dbi = DbiBitModel(cache, alpha=alpha, granularity=granularity)
            values[with_ecc] = (dbi.tag_store_reduction, dbi.cache_reduction)
        rows.append(
            Table4Row(
                alpha=alpha,
                tag_reduction_no_ecc=values[False][0],
                cache_reduction_no_ecc=values[False][1],
                tag_reduction_with_ecc=values[True][0],
                cache_reduction_with_ecc=values[True][1],
            )
        )
    return rows


def _organizations(cache_bytes: int, alpha: Fraction, granularity: int):
    """(baseline, dbi) CactiLite models for an ECC-protected cache."""
    cache = CacheBitModel(cache_bytes=cache_bytes, associativity=16, with_ecc=True)
    dbi_bits = DbiBitModel(cache, alpha=alpha, granularity=granularity)
    baseline = CactiLite(
        arrays=(
            ArrayModel("data", cache.data_store_bits),
            ArrayModel("tag", cache.tag_store_bits, is_tag=True),
        )
    )
    with_dbi = CactiLite(
        arrays=(
            ArrayModel("data", cache.data_store_bits),
            ArrayModel(
                "tag",
                dbi_bits.main_tag_store_bits + dbi_bits.dbi_ecc_bits,
                is_tag=True,
            ),
            ArrayModel("dbi", dbi_bits.dbi_bits, is_tag=True),
        )
    )
    return baseline, with_dbi


def area_reduction_with_ecc(
    cache_bytes: int = 16 * 1024 * 1024,
    alpha: Fraction = Fraction(1, 4),
    granularity: int = 64,
) -> float:
    """Section 6.3: overall cache area reduction for an ECC-protected cache.

    The paper reports 8% (α=1/4) and 5% (α=1/2) for a 16 MB cache.
    """
    baseline, with_dbi = _organizations(cache_bytes, alpha, granularity)
    return (baseline.area_mm2 - with_dbi.area_mm2) / baseline.area_mm2


def compute_table5(
    cache_sizes_mb=(2, 4, 8, 16),
    alpha: Fraction = Fraction(1, 4),
    granularity: int = 64,
    dbi_accesses_per_cache_access: float = 1.2,
    cache_accesses_per_cycle: float = 0.05,
) -> Dict[int, Dict[str, float]]:
    """DBI power as a fraction of total cache power (Table 5).

    The DBI is consulted on every writeback and dirtiness query; we charge
    it ``dbi_accesses_per_cache_access`` accesses per cache access
    (writeback update + eviction checks average slightly above one).
    """
    results: Dict[int, Dict[str, float]] = {}
    for size_mb in cache_sizes_mb:
        baseline, with_dbi = _organizations(size_mb * 1024 * 1024, alpha, granularity)
        dbi_array = [a for a in with_dbi.arrays if a.name == "dbi"][0]

        static_fraction = dbi_array.static_power_mw / with_dbi.static_power_mw

        cache_rate = cache_accesses_per_cycle
        dbi_rate = cache_rate * dbi_accesses_per_cache_access
        cache_dynamic = with_dbi.dynamic_power_mw(
            {"data": cache_rate, "tag": cache_rate, "dbi": dbi_rate}
        )
        dbi_dynamic = with_dbi.dynamic_power_mw({"dbi": dbi_rate})
        dynamic_fraction = dbi_dynamic / cache_dynamic

        results[size_mb] = {
            "static_fraction": static_fraction,
            "dynamic_fraction": dynamic_fraction,
        }
    return results
