"""Analytical area, storage and power models.

The paper uses CACTI 6.0 for area/latency/power and plain bit arithmetic for
storage (Table 4). CACTI is not available offline, so:

* :mod:`repro.area.bits` — exact bit-count arithmetic for tag stores, data
  arrays, ECC/EDC and the DBI (reproduces Table 4 exactly — it is pure
  arithmetic).
* :mod:`repro.area.cacti_lite` — a calibrated analytical area/latency/power
  model (bit counts × cell area × small-array peripheral overhead) that
  reproduces the *shape* of the paper's CACTI results: the 8%/5% total-area
  reductions for a 16 MB cache (Section 6.3) and Table 5's sub-1% static /
  few-% dynamic DBI power.
"""

from repro.area.bits import CacheBitModel, DbiBitModel
from repro.area.cacti_lite import ArrayModel, CactiLite
from repro.area.ecc_model import (
    Table4Row,
    area_reduction_with_ecc,
    compute_table4,
    compute_table5,
)

__all__ = [
    "CacheBitModel",
    "DbiBitModel",
    "ArrayModel",
    "CactiLite",
    "Table4Row",
    "compute_table4",
    "compute_table5",
    "area_reduction_with_ecc",
]
