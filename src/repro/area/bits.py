"""Exact bit-count arithmetic for cache metadata storage (paper Table 4).

Conventions follow the paper's setup:

* physical addresses are 48 bits, blocks are 64 B;
* a conventional tag entry holds tag + valid + dirty + replacement state;
* SECDED ECC costs 8 bits per 64-bit word → 64 bits per block (12.5%);
* parity EDC costs 1 bit per 64-bit word → 8 bits per block (~1.5%);
* a DBI entry holds valid + row tag + a ``granularity``-wide bit vector
  (Figure 1b) plus its replacement (LRW) state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.utils.bits import ceil_div, ilog2
from repro.utils.validation import check_positive, check_power_of_two

PHYSICAL_ADDRESS_BITS = 48
BLOCK_BYTES = 64
WORD_BITS = 64
SECDED_BITS_PER_WORD = 8
PARITY_BITS_PER_WORD = 1


@dataclass(frozen=True)
class CacheBitModel:
    """Bit counts for a conventional set-associative cache.

    Attributes:
        cache_bytes: data capacity.
        associativity: ways per set.
        with_ecc: whether per-block SECDED ECC is stored in the tag store.
    """

    cache_bytes: int
    associativity: int = 16
    with_ecc: bool = False

    def __post_init__(self) -> None:
        check_positive("cache_bytes", self.cache_bytes)
        check_power_of_two("associativity", self.associativity)

    @property
    def num_blocks(self) -> int:
        return self.cache_bytes // BLOCK_BYTES

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity

    @property
    def tag_bits(self) -> int:
        """Address bits minus block offset minus set index."""
        block_bits = ilog2(BLOCK_BYTES)
        set_bits = ilog2(self.num_sets)
        return PHYSICAL_ADDRESS_BITS - block_bits - set_bits

    @property
    def replacement_bits_per_block(self) -> int:
        """LRU stack position: log2(ways) bits per block."""
        return max(1, ilog2(self.associativity))

    @property
    def ecc_bits_per_block(self) -> int:
        words = BLOCK_BYTES * 8 // WORD_BITS
        return words * SECDED_BITS_PER_WORD  # 64 bits per 64 B block

    @property
    def edc_bits_per_block(self) -> int:
        words = BLOCK_BYTES * 8 // WORD_BITS
        return words * PARITY_BITS_PER_WORD  # 8 bits per 64 B block

    def tag_entry_bits(self, include_dirty: bool = True) -> int:
        bits = self.tag_bits + 1 + self.replacement_bits_per_block  # +valid
        if include_dirty:
            bits += 1
        if self.with_ecc:
            bits += self.ecc_bits_per_block
        return bits

    @property
    def tag_store_bits(self) -> int:
        """Conventional organization: dirty bit (and ECC) in every entry."""
        return self.num_blocks * self.tag_entry_bits(include_dirty=True)

    @property
    def data_store_bits(self) -> int:
        return self.num_blocks * BLOCK_BYTES * 8

    @property
    def total_bits(self) -> int:
        return self.tag_store_bits + self.data_store_bits


@dataclass(frozen=True)
class DbiBitModel:
    """Bit counts for the same cache reorganized around a DBI.

    The main tag store drops its dirty bits (and, with ECC, stores only
    parity EDC per block); the DBI adds entries with row tags and bit
    vectors, plus SECDED ECC for the α·N blocks it can track (Figure 5).
    """

    cache: CacheBitModel
    alpha: Fraction = Fraction(1, 4)
    granularity: int = 64
    dram_rows: int = 1 << 24  # row-tag namespace (log2 # rows in DRAM)

    def __post_init__(self) -> None:
        check_power_of_two("granularity", self.granularity)
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")

    @property
    def tracked_blocks(self) -> int:
        return int(self.cache.num_blocks * self.alpha)

    @property
    def num_entries(self) -> int:
        return max(1, self.tracked_blocks // self.granularity)

    @property
    def row_tag_bits(self) -> int:
        """Figure 1b: log2(# rows in DRAM) minus the DBI set-index bits."""
        dbi_sets = max(1, self.num_entries // 16)
        return max(1, ceil_div(int(math.log2(self.dram_rows)), 1) - ilog2(dbi_sets))

    @property
    def lrw_bits_per_entry(self) -> int:
        ways = min(16, self.num_entries)
        return max(1, ilog2(ways))

    @property
    def entry_bits(self) -> int:
        return 1 + self.row_tag_bits + self.granularity + self.lrw_bits_per_entry

    @property
    def dbi_bits(self) -> int:
        """The index structure itself."""
        return self.num_entries * self.entry_bits

    @property
    def dbi_ecc_bits(self) -> int:
        """SECDED for only the blocks the DBI can track (with-ECC designs)."""
        if not self.cache.with_ecc:
            return 0
        return self.tracked_blocks * self.cache.ecc_bits_per_block

    @property
    def main_tag_store_bits(self) -> int:
        """Main tag store: no dirty bit; EDC-per-block replaces full ECC."""
        per_entry = self.cache.tag_bits + 1 + self.cache.replacement_bits_per_block
        if self.cache.with_ecc:
            per_entry += self.cache.edc_bits_per_block
        return self.cache.num_blocks * per_entry

    @property
    def tag_side_bits(self) -> int:
        """Everything that is not data: main tags + DBI + DBI-side ECC."""
        return self.main_tag_store_bits + self.dbi_bits + self.dbi_ecc_bits

    @property
    def total_bits(self) -> int:
        return self.tag_side_bits + self.cache.data_store_bits

    # -------------------------------------------------------- comparisons

    @property
    def tag_store_reduction(self) -> float:
        """Fractional reduction vs the conventional tag store (Table 4)."""
        baseline = self.cache.tag_store_bits
        return (baseline - self.tag_side_bits) / baseline

    @property
    def cache_reduction(self) -> float:
        """Fractional reduction of the whole cache's bits (Table 4)."""
        baseline = self.cache.total_bits
        return (baseline - self.total_bits) / baseline
