#!/usr/bin/env bash
# CI entry point: tier-1 test suite plus verification passes.
#
# Usage:
#   tools/ci.sh                  # run every stage, in order
#   tools/ci.sh tier1 chaos      # run only the named stages, in the order given
#   tools/ci.sh --list           # print the stage names, one per line
#
# Stages run keep-going: a failed stage is recorded and the remaining
# stages still run; the roll-up at the end lists per-stage status and
# wall-clock, is mirrored to tools/ci_times.json (written even when a
# stage fails), and the exit status is 1 if any stage failed.
#
# Stages:
#   tier1        — fast tests (slow/fuzz markers excluded by addopts) with
#                  --strict-markers.
#   coverage     — the tier-1 selection again under pytest-cov, enforcing
#                  the committed floor in tools/coverage_floor.txt
#                  (override with COV_FAIL_UNDER); skips with a notice when
#                  pytest-cov is not installed.
#   slowfuzz     — long-running integration tests and the hypothesis fuzz
#                  layer over the checked simulator.
#   differential — `repro check-diff` replays a trace through every mechanism
#                  and the untimed golden model; any architectural divergence
#                  fails the build.
#   checked      — one full timing simulation with `--check full` (invariant
#                  sweeps + writeback-conservation ledger).
#   dramcache    — the die-stacked level's differential proof (both dirty
#                  backends vs the untimed oracle) plus the quick trade-off
#                  sweep: DBI-backed aggressive writeback must beat the
#                  tag-dirty backend's writeback row-hit rate everywhere.
#   conformance  — seeded coverage-guided campaign (`repro conformance`):
#                  random config/op-schedule trials through the differential
#                  and the invariant engine, run twice; zero findings and a
#                  byte-identical coverage map are required.
#   sweep        — one figure runner through the SweepRunner with 2 workers
#                  and a fresh cache, twice; the second pass must be answered
#                  from the cache, byte-identically.
#   chaos        — the same sweep under seeded worker crashes, hangs and
#                  cache corruption at p=0.3 with --keep-going; the recovered
#                  output must be byte-identical to the fault-free run.
#   reliability  — soft-error smoke: the heterogeneous-ECC experiment must
#                  show zero data loss for DBI-tracked domains.
#   telemetry    — epoch-sampling smoke: `repro run --telemetry` must leave
#                  a parseable JSONL artifact and `repro timeline` must
#                  render the per-epoch table end to end.
#   checkpoint   — tools/checkpoint_gate.py proves a mid-run snapshot under
#                  --check full restores byte-identically, that a corrupt
#                  warm image is quarantined to .ckpt.corrupt and rebuilt,
#                  and that a fork+sampled quick fig6 sweep beats the cold
#                  full-run sweep by >= 2.0x wall-clock (warm build included).
#   campaign     — tools/soak_gate.py SIGKILLs a campaign orchestrator at
#                  scheduled journal offsets (mid-journal-append, after a
#                  dispatch, mid-warm-image-build) plus one SIGTERM drain,
#                  resumes each from the journal, and fails unless every
#                  recovered campaign's results/report/telemetry artifacts
#                  are byte-identical to an uninterrupted reference run.
#   campaignfull — the quick-tier campaign end to end: full-width mix
#                  tables, alone-IPC normalizer cells and the sensitivity
#                  sweep, emitting the Figure 6/7/8 surfaces with CIs;
#                  then tools/soak_gate.py --tier SIGKILLs a shrunken
#                  tier campaign mid-dispatch and requires byte-identical
#                  surfaces after resume.
#   perf         — tools/perf_gate.py measures quick-scale fig6 cells on HEAD
#                  and on a pinned pre-overhaul reference commit (same
#                  machine), and fails if the speedup ratio regresses >20%
#                  vs the ratio pinned in BENCH_baseline.json. Ratios are
#                  hardware-independent; absolute ev/s is recorded only.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

COV_FAIL_UNDER=${COV_FAIL_UNDER:-$(cat tools/coverage_floor.txt)}
ALL_STAGES=(tier1 coverage slowfuzz differential checked dramcache
            conformance sweep chaos reliability telemetry checkpoint
            campaign campaignfull perf)

if [ "${1:-}" = "--list" ]; then
    printf '%s\n' "${ALL_STAGES[@]}"
    exit 0
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

stage_tier1() {
    python -m pytest -x -q --strict-markers
}

stage_coverage() {
    if ! python -c "import pytest_cov" 2>/dev/null; then
        echo "ci: skip — pytest-cov not installed; install with" \
             "'pip install .[cov]' to enforce the ${COV_FAIL_UNDER}% floor"
        return 0
    fi
    python -m pytest -q --strict-markers \
        -m "not slow and not fuzz and not benchmark" \
        --cov=repro --cov-report=term-missing --cov-report=json \
        --cov-fail-under="$COV_FAIL_UNDER"
    # Floor only moves up: when coverage beats it by >1 point, the ratchet
    # rewrites tools/coverage_floor.txt for the next commit to pick up.
    python tools/coverage_ratchet.py
    echo "ci: ok (line coverage >= ${COV_FAIL_UNDER}%)"
}

stage_slowfuzz() {
    python -m pytest -x -q --strict-markers -m "slow or fuzz"
}

stage_differential() {
    python -m repro check-diff --refs 2000
}

stage_checked() {
    python -m repro run lbm dbi+awb --scale quick --refs 4000 --check full
}

stage_dramcache() {
    # Differential proof for the stacked level, both dirty backends.
    python -m repro check-diff --refs 2000 --dram-cache tag
    python -m repro check-diff --refs 2000 --dram-cache dbi
    # Quick trade-off sweep: row-batched writebacks must pay off.
    python - << 'PY'
from repro.analysis.experiments import run_dramcache
from repro.analysis.scaling import QUICK_SCALE

result = run_dramcache(QUICK_SCALE)
print(result.to_text())
for bench, cells in result.raw.items():
    tag, dbi = cells.get("tag"), cells.get("dbi")
    assert tag and dbi, f"{bench}: trade-off job failed"
    assert dbi["write_row_hit_rate"] > tag["write_row_hit_rate"], (
        f"{bench}: DBI writeback row-hit rate did not beat tag-dirty"
    )
print("ci: ok (DBI wb row-hit rate beats tag-dirty on every benchmark)")
PY
}

stage_conformance() {
    # Background-writeback mechanisms below the level: the corner oracle v2
    # unlocked must stay covered explicitly.
    python -m repro check-diff --refs 1500 --dram-cache dbi \
        --mechanisms dbi+awb,dawb,skipcache
    # Seeded campaign, twice: zero findings, byte-stable coverage map.
    python -m repro conformance --trials 24 --out "$tmp/conf-a"
    python -m repro conformance --trials 24 --out "$tmp/conf-b"
    if ! cmp -s "$tmp/conf-a/coverage.json" "$tmp/conf-b/coverage.json"; then
        echo "ci: FAIL — conformance coverage map is not byte-stable" >&2
        diff "$tmp/conf-a/coverage.json" "$tmp/conf-b/coverage.json" >&2 || true
        return 1
    fi
    keys=$(python -c "import json;print(len(json.load(open('$tmp/conf-a/coverage.json'))))")
    echo "ci: ok (24 trials, 0 findings, $keys coverage keys, map byte-stable)"
}

sweep() {
    python -m repro experiment fig6 --scale quick \
        --benchmarks mcf,bzip2 --workers 2 --cache-dir "$tmp/cache" --quiet
}

# The chaos stage diffs against the fault-free sweep output; produce it here
# so `tools/ci.sh chaos` works standalone, and the sweep stage reuses it.
ensure_fault_free_sweep() {
    if [ ! -f "$tmp/cold.txt" ]; then
        sweep > "$tmp/cold.txt"
    fi
}

stage_sweep() {
    ensure_fault_free_sweep
    sweep > "$tmp/warm.txt"
    if ! cmp -s "$tmp/cold.txt" "$tmp/warm.txt"; then
        echo "ci: FAIL — warm-cache sweep output differs from cold run" >&2
        diff "$tmp/cold.txt" "$tmp/warm.txt" >&2 || true
        return 1
    fi
    entries=$(ls "$tmp/cache" | wc -l)
    echo "ci: ok (sweep cache holds $entries entries; warm rerun byte-identical)"
}

stage_chaos() {
    ensure_fault_free_sweep
    # hang_seconds must exceed --job-timeout for hangs to trigger recovery,
    # and the generous attempt budget lets every fault be retried through;
    # recovery must repair execution without touching data.
    python -m repro experiment fig6 --scale quick \
        --benchmarks mcf,bzip2 --workers 2 --cache-dir "$tmp/chaos-cache" \
        --quiet --keep-going --max-attempts 6 --job-timeout 10 \
        --chaos "seed=7,crash=0.3,hang=0.3,corrupt=0.3,hang_seconds=20" \
        > "$tmp/chaos.txt"
    if ! cmp -s "$tmp/cold.txt" "$tmp/chaos.txt"; then
        echo "ci: FAIL — chaos sweep output differs from fault-free run" >&2
        diff "$tmp/cold.txt" "$tmp/chaos.txt" >&2 || true
        return 1
    fi
    echo "ci: ok (chaos sweep byte-identical to fault-free run)"
}

stage_reliability() {
    python -m repro reliability --scale quick --refs 6000 \
        --mechanisms baseline,dbi --alphas 1/4 --faults 60 --interval 150 \
        | tee "$tmp/reliability.txt"
    if ! grep -q "lost 0 blocks" "$tmp/reliability.txt"; then
        echo "ci: FAIL — DBI-tracked domain reported soft-error data loss" >&2
        return 1
    fi
    echo "ci: ok (DBI-tracked domains lost no data)"
}

stage_telemetry() {
    # The sampler is observational, so correctness is covered by the test
    # suite (byte-identical results); this stage guards the user-facing
    # plumbing: artifact on disk, loadable stream, rendered table.
    python -m repro run lbm dbi+awb --scale quick --refs 4000 \
        --telemetry "$tmp/telemetry.jsonl" --epoch-cycles 2000 \
        > "$tmp/telemetry-run.txt"
    if ! grep -q "measured warmup" "$tmp/telemetry-run.txt"; then
        echo "ci: FAIL — run --telemetry printed no warmup report" >&2
        return 1
    fi
    [ -s "$tmp/telemetry.jsonl" ] || {
        echo "ci: FAIL — telemetry JSONL artifact missing or empty" >&2
        return 1
    }
    python -m repro timeline --input "$tmp/telemetry.jsonl" \
        --stat ipc --stat mech.dbi_occupancy > "$tmp/timeline.txt"
    if ! grep -q "epoch  *cycle  *cycles" "$tmp/timeline.txt"; then
        echo "ci: FAIL — timeline rendered no epoch table" >&2
        cat "$tmp/timeline.txt" >&2
        return 1
    fi
    epochs=$(grep -c '"epoch"' "$tmp/telemetry.jsonl")
    echo "ci: ok (streamed $epochs epochs; timeline rendered from artifact)"
}

stage_checkpoint() {
    python tools/checkpoint_gate.py
}

stage_campaign() {
    python tools/soak_gate.py
}

stage_campaignfull() {
    python -m repro campaign run --tier quick \
        --dir "$tmp/campaignfull" --workers 2 --quiet
    for artifact in report.txt results.json surfaces/surfaces.json \
        surfaces/fig6a.txt surfaces/fig6b.txt surfaces/fig6c.txt \
        surfaces/fig6d.txt surfaces/fig6e.txt surfaces/fig7.txt \
        surfaces/fig8.txt surfaces/sensitivity.txt; do
        if [ ! -s "$tmp/campaignfull/$artifact" ]; then
            echo "ci: FAIL — campaign artifact $artifact missing or empty" >&2
            return 1
        fi
    done
    python tools/soak_gate.py --tier
    echo "ci: ok (quick-tier campaign emitted every surface; tier kill" \
         "points recovered byte-identically)"
}

stage_perf() {
    python tools/perf_gate.py
}

if [ "$#" -gt 0 ]; then
    stages=("$@")
else
    stages=("${ALL_STAGES[@]}")
fi

for stage in "${stages[@]}"; do
    case " ${ALL_STAGES[*]} " in
        *" $stage "*) ;;
        *)
            echo "ci: unknown stage '$stage' (choose from: ${ALL_STAGES[*]})" >&2
            exit 2
            ;;
    esac
done

# Child mode: run exactly one stage under the top-level `set -e`, so a
# failing command anywhere inside the stage function fails the process.
# The parent loop re-invokes this script per stage — calling the function
# from inside an `if` would suppress errexit within it (bash semantics),
# letting multi-command stages "pass" after an early command failed.
if [ "${CI_STAGE_CHILD:-0}" = 1 ]; then
    "stage_$1"
    exit 0
fi

results="$tmp/stage-results.txt"
: > "$results"
overall=0
for stage in "${stages[@]}"; do
    echo "== stage: $stage =="
    stage_start=$SECONDS
    if CI_STAGE_CHILD=1 "$BASH" "$0" "$stage"; then
        status=pass
        echo "ci: stage $stage passed in $((SECONDS - stage_start))s"
    else
        status=fail
        overall=1
        echo "ci: stage $stage FAILED after $((SECONDS - stage_start))s" >&2
    fi
    printf '%s %s %s\n' "$stage" "$status" "$((SECONDS - stage_start))" \
        >> "$results"
done

# Timing summary: mirrored to tools/ci_times.json (gitignored) so CI can
# upload it; written even when stages failed.
python - "$results" tools/ci_times.json << 'PY'
import json, sys

stages = []
with open(sys.argv[1]) as handle:
    for line in handle:
        name, status, seconds = line.split()
        stages.append(
            {"name": name, "status": status, "seconds": int(seconds)}
        )
payload = {
    "format": 1,
    "stages": stages,
    "total_seconds": sum(s["seconds"] for s in stages),
}
with open(sys.argv[2], "w") as handle:
    json.dump(payload, handle, indent=2)
    handle.write("\n")
PY

echo "== ci roll-up =="
failed=()
while read -r name status seconds; do
    printf 'ci: %-12s %-4s %4ss\n' "$name" "$status" "$seconds"
    if [ "$status" = fail ]; then
        failed+=("$name")
    fi
done < "$results"
if [ "$overall" -ne 0 ]; then
    echo "ci: FAILED stages: ${failed[*]} (timings in tools/ci_times.json)" >&2
    exit 1
fi
echo "ci: all requested stages passed (${stages[*]})"
