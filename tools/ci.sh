#!/usr/bin/env bash
# CI entry point: tier-1 test suite plus a parallel-path smoke sweep.
#
# The tier-1 suite exercises the simulator serially; the smoke sweep runs one
# figure runner through the SweepRunner with 2 worker processes and a fresh
# cache, twice — the second pass must be answered entirely from the cache and
# produce byte-identical output, so regressions in job keying, result
# serialization, worker dispatch or resume semantics fail fast here.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== 2-worker smoke sweep (figure 6 subset) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
sweep() {
    python -m repro experiment fig6 --scale quick \
        --benchmarks mcf,bzip2 --workers 2 --cache-dir "$tmp/cache" --quiet
}
sweep > "$tmp/cold.txt"
sweep > "$tmp/warm.txt"
if ! cmp -s "$tmp/cold.txt" "$tmp/warm.txt"; then
    echo "ci: FAIL — warm-cache sweep output differs from cold run" >&2
    diff "$tmp/cold.txt" "$tmp/warm.txt" >&2 || true
    exit 1
fi
entries=$(ls "$tmp/cache" | wc -l)
echo "ci: ok (sweep cache holds $entries entries; warm rerun byte-identical)"
