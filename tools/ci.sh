#!/usr/bin/env bash
# CI entry point: tier-1 test suite plus verification passes.
#
# Stages:
#   1. tier-1 suite      — fast tests (slow/fuzz markers excluded by addopts);
#                          runs under coverage when pytest-cov is installed,
#                          enforcing the fail-under floor below.
#   2. slow + fuzz suite — long-running integration tests and the hypothesis
#                          fuzz layer over the checked simulator.
#   3. differential      — `repro check-diff` replays a trace through every
#                          mechanism and the untimed golden model; any
#                          architectural divergence fails the build.
#   4. checked smoke run — one full timing simulation with `--check full`
#                          (invariant sweeps + writeback-conservation ledger).
#   5. sweep cache smoke — one figure runner through the SweepRunner with 2
#                          workers and a fresh cache, twice; the second pass
#                          must be answered from the cache, byte-identically.
#   6. chaos stage       — the same sweep under seeded worker crashes, hangs
#                          and cache corruption at p=0.3 with --keep-going;
#                          the recovered output must be byte-identical to
#                          the fault-free run. Plus a reliability smoke: the
#                          soft-error experiment must show zero data loss
#                          for DBI-tracked domains.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

COV_FAIL_UNDER=${COV_FAIL_UNDER:-80}

echo "== tier-1 test suite =="
if python -c "import pytest_cov" 2>/dev/null; then
    python -m pytest -x -q --cov=repro --cov-report=term-missing \
        --cov-fail-under="$COV_FAIL_UNDER"
else
    echo "(pytest-cov not installed; running without coverage — install with"
    echo " 'pip install .[cov]' to enforce the ${COV_FAIL_UNDER}% floor)"
    python -m pytest -x -q
fi

echo "== slow + fuzz suite =="
python -m pytest -x -q -m "slow or fuzz"

echo "== differential validation (all mechanisms vs golden model) =="
python -m repro check-diff --refs 2000

echo "== checked-mode smoke run (--check full) =="
python -m repro run lbm dbi+awb --scale quick --refs 4000 --check full

echo "== 2-worker smoke sweep (figure 6 subset) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
sweep() {
    python -m repro experiment fig6 --scale quick \
        --benchmarks mcf,bzip2 --workers 2 --cache-dir "$tmp/cache" --quiet
}
sweep > "$tmp/cold.txt"
sweep > "$tmp/warm.txt"
if ! cmp -s "$tmp/cold.txt" "$tmp/warm.txt"; then
    echo "ci: FAIL — warm-cache sweep output differs from cold run" >&2
    diff "$tmp/cold.txt" "$tmp/warm.txt" >&2 || true
    exit 1
fi
entries=$(ls "$tmp/cache" | wc -l)
echo "ci: ok (sweep cache holds $entries entries; warm rerun byte-identical)"

echo "== chaos stage: seeded crash/hang/corruption at p=0.3, --keep-going =="
# hang_seconds must exceed --job-timeout for hangs to trigger recovery, and
# the generous attempt budget lets every fault be retried through; recovery
# must repair execution without touching data.
python -m repro experiment fig6 --scale quick \
    --benchmarks mcf,bzip2 --workers 2 --cache-dir "$tmp/chaos-cache" \
    --quiet --keep-going --max-attempts 6 --job-timeout 10 \
    --chaos "seed=7,crash=0.3,hang=0.3,corrupt=0.3,hang_seconds=20" \
    > "$tmp/chaos.txt"
if ! cmp -s "$tmp/cold.txt" "$tmp/chaos.txt"; then
    echo "ci: FAIL — chaos sweep output differs from fault-free run" >&2
    diff "$tmp/cold.txt" "$tmp/chaos.txt" >&2 || true
    exit 1
fi
echo "ci: ok (chaos sweep byte-identical to fault-free run)"

echo "== reliability smoke (heterogeneous ECC soft errors) =="
python -m repro reliability --scale quick --refs 6000 \
    --mechanisms baseline,dbi --alphas 1/4 --faults 60 --interval 150 \
    | tee "$tmp/reliability.txt"
if ! grep -q "lost 0 blocks" "$tmp/reliability.txt"; then
    echo "ci: FAIL — DBI-tracked domain reported soft-error data loss" >&2
    exit 1
fi
echo "ci: ok (DBI-tracked domains lost no data)"
