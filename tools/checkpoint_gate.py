#!/usr/bin/env python
"""Checkpoint CI gate: restore equivalence, quarantine, fork speedup.

Three checks, each of which must pass:

1. **Restore equivalence** — a system snapshotted mid-run (with the full
   invariant engine attached) and restored must finish byte-identically to
   the uninterrupted run. This is the checkpoint subsystem's load-bearing
   guarantee; the gate re-proves it on every CI run, not just in the test
   suite.
2. **Corrupt-snapshot quarantine** — a warm image whose payload has been
   flipped must be quarantined to ``.ckpt.corrupt`` (evidence preserved),
   rebuilt, and the rebuilt sweep must reproduce the original results.
3. **Fork+sampled speedup** — a quick-scale Figure 6 mechanism sweep run
   via fork-from-warm + sampled windows must beat the cold full-run sweep
   by at least ``--threshold`` (default 2.0x) wall-clock, *including* the
   warm-image build. Ratios on one machine are hardware-independent enough
   to gate on; absolute seconds are reported for context only.

Exit status 0 = all checks passed, 1 = at least one failed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

DEFAULT_THRESHOLD = 2.0
DEFAULT_BENCHMARK = "mcf"


def result_bytes(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def check_restore_equivalence(benchmark: str) -> str:
    from repro.analysis.scaling import QUICK_SCALE
    from repro.checkpoint import restore_system, snapshot_system
    from repro.sim.system import System

    def fresh():
        trace = QUICK_SCALE.benchmark_trace(benchmark, refs=4_000)
        return System(
            QUICK_SCALE.system_config("dbi+awb+clb"), [trace], check="full"
        )

    system = fresh()
    for core in system.cores:
        core.start()
    system.queue.run(max_events=25_000)
    restored = restore_system(snapshot_system(system))
    expected = result_bytes(system.resume())
    actual = result_bytes(restored.resume())
    if actual != expected:
        raise AssertionError(
            "restored run diverged from the uninterrupted run"
        )
    return "restore-equivalence: restored run byte-identical under --check full"


def check_quarantine(tmp: str, benchmark: str) -> str:
    from repro.analysis.runner import SweepRunner
    from repro.analysis.scaling import QUICK_SCALE

    ckpt = os.path.join(tmp, "quarantine-ckpt")
    trace = QUICK_SCALE.benchmark_trace(benchmark, refs=4_000)
    config = QUICK_SCALE.system_config("tadip")
    with SweepRunner(
        workers=0, use_cache=False, progress=None, checkpoint_dir=ckpt
    ) as first:
        expected = result_bytes(first.run(config, [trace]))
    (image,) = [f for f in os.listdir(ckpt) if f.endswith(".ckpt")]
    path = os.path.join(ckpt, image)
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    blob[-10] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    with SweepRunner(
        workers=0, use_cache=False, progress=None, checkpoint_dir=ckpt
    ) as second:
        replay = result_bytes(second.run(config, [trace]))
    if second.checkpoints_quarantined != 1:
        raise AssertionError("corrupt warm image was not quarantined")
    if not os.path.exists(f"{path}.corrupt"):
        raise AssertionError("quarantine left no .corrupt evidence file")
    if not os.path.exists(path):
        raise AssertionError("warm image was not rebuilt after quarantine")
    if replay != expected:
        raise AssertionError("rebuilt warm image produced different results")
    return "quarantine: corrupt warm image quarantined, rebuilt, reproduced"


def measure_speedup(tmp: str, benchmark: str, threshold: float) -> str:
    from repro.analysis.experiments import FIGURE6_MECHANISMS
    from repro.analysis.runner import SweepRunner
    from repro.analysis.scaling import QUICK_SCALE
    from repro.checkpoint.sampled import SampledConfig

    trace = QUICK_SCALE.benchmark_trace(benchmark)
    configs = [
        QUICK_SCALE.system_config(mech) for mech in FIGURE6_MECHANISMS
    ]

    start = time.perf_counter()
    with SweepRunner(workers=0, use_cache=False, progress=None) as cold:
        for config in configs:
            cold.run(config, [trace])
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with SweepRunner(
        workers=0,
        use_cache=False,
        progress=None,
        checkpoint_dir=os.path.join(tmp, "speedup-ckpt"),
        sampled=SampledConfig(),
    ) as fast:
        for config in configs:
            fast.run(config, [trace])
    fast_seconds = time.perf_counter() - start

    speedup = cold_seconds / fast_seconds if fast_seconds else float("inf")
    detail = (
        f"cold {cold_seconds:.2f}s, fork+sampled {fast_seconds:.2f}s "
        f"(incl. {fast.warm_images_built} warm build), {speedup:.2f}x over "
        f"{len(configs)} cells"
    )
    if speedup < threshold:
        raise AssertionError(
            f"fork+sampled speedup {speedup:.2f}x below the {threshold:.1f}x "
            f"gate ({detail})"
        )
    return f"speedup: {detail} >= {threshold:.1f}x gate"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"minimum fork+sampled speedup (default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--benchmark", default=DEFAULT_BENCHMARK,
        help=f"quick-scale benchmark to gate on (default: {DEFAULT_BENCHMARK})",
    )
    args = parser.parse_args(argv)

    failed = False
    with tempfile.TemporaryDirectory() as tmp:
        checks = (
            lambda: check_restore_equivalence(args.benchmark),
            lambda: check_quarantine(tmp, args.benchmark),
            lambda: measure_speedup(tmp, args.benchmark, args.threshold),
        )
        for check in checks:
            try:
                print(f"checkpoint-gate: ok — {check()}")
            except AssertionError as exc:
                print(f"checkpoint-gate: FAIL — {exc}", file=sys.stderr)
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
