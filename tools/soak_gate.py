#!/usr/bin/env python
"""Campaign soak gate: crash recovery must be byte-identical.

Runs the kill-and-resume chaos proof (:mod:`repro.campaign.proof`) over
two campaign variants and gates CI on every recovered campaign producing
``results.json`` / ``report.txt`` (and telemetry streams) **byte for
byte** equal to an uninterrupted reference run:

* **telemetry variant** — three scheduled faults against a 2-cell inline
  campaign: SIGKILL *mid-journal-append* (a torn half record is durable
  when the process dies), SIGKILL right after the first dispatch record,
  and a SIGTERM graceful drain;
* **checkpoint variant** — SIGKILL *mid-warm-image-build*, while the
  build lock is held and partial staging litter is on disk; the resume
  must reclaim the dead owner's lock and rebuild.

Faults are scheduled at exact journal sequence offsets (via the
``REPRO_CAMPAIGN_CHAOS`` environment variable), not sampled from a
probability, so the gate is deterministic: the same instant dies on
every CI run. ``--quick`` runs only the two load-bearing points (torn
append + warm build) for a faster smoke.

``--tier`` instead proves a shrunken *quick-tier* campaign — full-width
mix tables, alone-IPC normalizer cells and the sensitivity sweep — and
byte-compares the Figure 6/7/8 surface files on top of the standard
artifacts. Its kill seq is computed from the tier's actual plan length
(the cell count depends on the mix tables), so it always lands
mid-dispatch rather than at a hard-coded offset.

Exit status 0 = every kill point recovered byte-identically, 1 = not.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign.proof import KillPoint, kill_and_resume_proof  # noqa: E402

# Journal seq layout of the 2-cell inline campaign (--workers 0):
# 0 header, 1-2 cell, 3 planned, 4-5 dispatch, 6-7 done, 8 complete.
TELEMETRY_POINTS = [
    KillPoint("torn-mid-append", "kill=6,mode=torn"),
    KillPoint("kill-after-dispatch", "kill=4,mode=kill"),
    KillPoint("term-drain", "kill=4,mode=term", expect="drain"),
]
CHECKPOINT_POINTS = [
    KillPoint("kill-mid-warm-build", "warm_kill=1"),
]

# The shrunken quick-tier grid the --tier proof runs: small enough for CI,
# wide enough to exercise full-width mixes, alone cells and sens cells.
# The sensitivity grid is cut to one divisor and one benchmark because
# sens cells run SENSITIVITY_REFS_FLOOR refs regardless of --refs.
TIER_BENCHMARKS = "lbm"
TIER_MECHANISMS = "baseline,dbi"
TIER_CORES = "1,2"
TIER_REFS = 200
TIER_SENSITIVITY = "2"
TIER_SENS_BENCHMARKS = "lbm"


def tier_kill_points() -> list:
    """Kill points for the tier proof, placed from the actual plan length.

    The tier plan's cell count depends on the full-width mix tables, so
    the journal seq of "mid-dispatch" is computed, not hard-coded: after
    the header (seq 0), ``n`` cell records and the planned record, the
    first dispatch/done pairs start at seq ``n + 2``.
    """
    from repro.campaign.tiers import tier_config

    cells = len(
        tier_config(
            "quick",
            benchmarks=tuple(TIER_BENCHMARKS.split(",")),
            mechanisms=tuple(TIER_MECHANISMS.split(",")),
            core_counts=tuple(int(c) for c in TIER_CORES.split(",")),
            refs=TIER_REFS,
            sensitivity=tuple(
                int(d) for d in TIER_SENSITIVITY.split(",")
            ),
            sensitivity_benchmarks=tuple(TIER_SENS_BENCHMARKS.split(",")),
        ).plan()
    )
    mid = cells + 2 + 18  # 9 dispatch/done pairs into the grid
    return [
        KillPoint("tier-torn-mid-append", f"kill={mid},mode=torn"),
        KillPoint("tier-kill-mid-dispatch", f"kill={mid + 1},mode=kill"),
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="only the torn-append and mid-warm-build points",
    )
    parser.add_argument(
        "--refs",
        type=int,
        default=800,
        help="trace length per campaign cell (default 800)",
    )
    parser.add_argument(
        "--keep",
        metavar="DIR",
        default=None,
        help="run under DIR and keep the campaign directories for autopsy",
    )
    parser.add_argument(
        "--tier",
        action="store_true",
        help="prove a shrunken quick-tier campaign (full-width mixes, "
             "surfaces) instead of the legacy variants",
    )
    args = parser.parse_args()

    telemetry_points = TELEMETRY_POINTS[:1] if args.quick else TELEMETRY_POINTS

    if args.keep is not None:
        os.makedirs(args.keep, exist_ok=True)
        context = None
        base = args.keep
    else:
        context = tempfile.TemporaryDirectory(prefix="soak-gate-")
        base = context.name

    if args.tier:
        variants = [
            (
                "tier-quick",
                tier_kill_points(),
                {
                    "tier": "quick",
                    "benchmarks": TIER_BENCHMARKS,
                    "mechanisms": TIER_MECHANISMS,
                    "cores": TIER_CORES,
                    "refs": TIER_REFS,
                    "sensitivity": TIER_SENSITIVITY,
                    "sensitivity_benchmarks": TIER_SENS_BENCHMARKS,
                },
            )
        ]
    else:
        variants = [
            ("telemetry", telemetry_points,
             {"telemetry": True, "refs": args.refs}),
            ("checkpoint", CHECKPOINT_POINTS,
             {"checkpoint": True, "refs": args.refs}),
        ]

    failed = False
    total = 0
    try:
        for variant, points, flags in variants:
            report = kill_and_resume_proof(
                base, variant=variant, kill_points=points, **flags,
            )
            print(report.to_text())
            total += len(points)
            if not report.ok:
                failed = True
    finally:
        if context is not None:
            context.cleanup()

    if failed:
        print("soak gate: FAIL — recovery diverged from the reference run",
              file=sys.stderr)
        return 1
    print(f"soak gate: ok ({total} kill points recovered byte-identically)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
