#!/usr/bin/env python
"""Campaign soak gate: crash recovery must be byte-identical.

Runs the kill-and-resume chaos proof (:mod:`repro.campaign.proof`) over
two campaign variants and gates CI on every recovered campaign producing
``results.json`` / ``report.txt`` (and telemetry streams) **byte for
byte** equal to an uninterrupted reference run:

* **telemetry variant** — three scheduled faults against a 2-cell inline
  campaign: SIGKILL *mid-journal-append* (a torn half record is durable
  when the process dies), SIGKILL right after the first dispatch record,
  and a SIGTERM graceful drain;
* **checkpoint variant** — SIGKILL *mid-warm-image-build*, while the
  build lock is held and partial staging litter is on disk; the resume
  must reclaim the dead owner's lock and rebuild.

Faults are scheduled at exact journal sequence offsets (via the
``REPRO_CAMPAIGN_CHAOS`` environment variable), not sampled from a
probability, so the gate is deterministic: the same instant dies on
every CI run. ``--quick`` runs only the two load-bearing points (torn
append + warm build) for a faster smoke.

Exit status 0 = every kill point recovered byte-identically, 1 = not.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign.proof import KillPoint, kill_and_resume_proof  # noqa: E402

# Journal seq layout of the 2-cell inline campaign (--workers 0):
# 0 header, 1-2 cell, 3 planned, 4-5 dispatch, 6-7 done, 8 complete.
TELEMETRY_POINTS = [
    KillPoint("torn-mid-append", "kill=6,mode=torn"),
    KillPoint("kill-after-dispatch", "kill=4,mode=kill"),
    KillPoint("term-drain", "kill=4,mode=term", expect="drain"),
]
CHECKPOINT_POINTS = [
    KillPoint("kill-mid-warm-build", "warm_kill=1"),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="only the torn-append and mid-warm-build points",
    )
    parser.add_argument(
        "--refs",
        type=int,
        default=800,
        help="trace length per campaign cell (default 800)",
    )
    parser.add_argument(
        "--keep",
        metavar="DIR",
        default=None,
        help="run under DIR and keep the campaign directories for autopsy",
    )
    args = parser.parse_args()

    telemetry_points = TELEMETRY_POINTS[:1] if args.quick else TELEMETRY_POINTS

    if args.keep is not None:
        os.makedirs(args.keep, exist_ok=True)
        context = None
        base = args.keep
    else:
        context = tempfile.TemporaryDirectory(prefix="soak-gate-")
        base = context.name

    failed = False
    try:
        for variant, points, flags in (
            ("telemetry", telemetry_points, {"telemetry": True}),
            ("checkpoint", CHECKPOINT_POINTS, {"checkpoint": True}),
        ):
            report = kill_and_resume_proof(
                base, variant=variant, kill_points=points,
                refs=args.refs, **flags,
            )
            print(report.to_text())
            if not report.ok:
                failed = True
    finally:
        if context is not None:
            context.cleanup()

    if failed:
        print("soak gate: FAIL — recovery diverged from the reference run",
              file=sys.stderr)
        return 1
    total = len(telemetry_points) + len(CHECKPOINT_POINTS)
    print(f"soak gate: ok ({total} kill points recovered byte-identically)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
