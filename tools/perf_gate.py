#!/usr/bin/env python3
"""CI performance gate: self-relative speedup of quick-scale fig6 cells.

Runs a fixed, representative subset of the Figure 6 sweep *inline* — one
process, no workers, no sweep cache — so the aggregate events/sec is a clean
measurement of per-event simulator cost. The same cells are then re-measured
on a pinned **reference commit** (pre-overhaul ``main``, checked out into a
throwaway git worktree) in the same job, so both numbers come from identical
hardware and the gated quantity is the *speedup ratio*, which is stable
across machines. Absolute events/sec varies 20-50% between dev boxes and
hosted CI runners, so it is recorded for the trajectory but never gated on.

The gate:

* writes ``BENCH_<UTC-date>.json`` (events/sec, wall-clock, peak RSS,
  per-cell breakdown, and the speedup vs the reference commit) next to the
  baseline, extending the perf trajectory;
* exits 1 if the speedup ratio regressed more than ``--threshold``
  (default 20%) against the ratio pinned in ``BENCH_baseline.json``.

``--update-baseline`` rewrites ``BENCH_baseline.json`` from this run instead
of gating (used to seed the baseline, or to deliberately re-pin it after an
accepted perf change — commit the result). Requires the reference commit in
the local object store: CI checks out with ``fetch-depth: 0``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: The measured cells: a quick-scale fig6 subset that exercises the baseline
#: tag path, the DRAM-aware writeback scan, and the full DBI+AWB stack.
BENCHMARKS = ("lbm", "mcf")
MECHANISMS = ("tadip", "dawb", "dbi+awb")

#: Pre-overhaul ``main`` — the commit the hot-path speedup is claimed
#: against. Measured fresh in every gate run, on the same machine as HEAD,
#: so the gated ratio carries no cross-machine noise.
REFERENCE_COMMIT = "e6f17ebf719c77747953fdd65a7284c0687b8f94"

BASELINE_PATH = REPO_ROOT / "BENCH_baseline.json"

#: Stand-alone driver executed inside the reference worktree. The reference
#: commit predates this tool, so the measurement loop is shipped to it here;
#: it relies only on APIs that exist there (SCALES, run_system).
_REFERENCE_DRIVER = """\
import json, sys, time

sys.path.insert(0, sys.argv[1])
from repro.analysis.scaling import SCALES
from repro.sim.system import run_system

scale = SCALES[sys.argv[2]]
total_events = 0
total_wall = 0.0
for benchmark in sys.argv[3].split(","):
    trace = scale.benchmark_trace(benchmark)
    for mechanism in sys.argv[4].split(","):
        config = scale.system_config(mechanism)
        start = time.perf_counter()
        result = run_system(config, [trace])
        total_wall += time.perf_counter() - start
        total_events += result.events_processed
print(json.dumps({
    "events_per_second": round(total_events / total_wall),
    "total_events": total_events,
    "wall_seconds": round(total_wall, 3),
}))
"""


def measure(scale_name: str = "quick") -> dict:
    """Run every cell inline and return the aggregate + per-cell report."""
    from repro.analysis.scaling import SCALES
    from repro.sim.system import run_system

    scale = SCALES[scale_name]
    cells = []
    total_events = 0
    total_wall = 0.0
    for benchmark in BENCHMARKS:
        trace = scale.benchmark_trace(benchmark)
        for mechanism in MECHANISMS:
            config = scale.system_config(mechanism)
            start = time.perf_counter()
            result = run_system(config, [trace])
            wall = time.perf_counter() - start
            total_events += result.events_processed
            total_wall += wall
            cells.append(
                {
                    "benchmark": benchmark,
                    "mechanism": mechanism,
                    "events": result.events_processed,
                    "wall_seconds": round(wall, 4),
                    "events_per_second": round(result.events_processed / wall),
                }
            )
            print(
                f"perf: {benchmark:>6} / {mechanism:<11} "
                f"{result.events_processed:>8} events  {wall:6.3f}s  "
                f"{result.events_processed / wall:>9,.0f} ev/s",
                flush=True,
            )
    # ru_maxrss is KiB on Linux, bytes on macOS.
    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":
        peak_rss //= 1024
    return {
        "recorded_utc": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "scale": scale_name,
        "events_per_second": round(total_events / total_wall),
        "total_events": total_events,
        "wall_seconds": round(total_wall, 3),
        "peak_rss_kib": peak_rss,
        "python": platform.python_version(),
        "cells": cells,
    }


def _git(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        ("git", *args), cwd=REPO_ROOT, capture_output=True, text=True
    )


def measure_reference(scale_name: str = "quick") -> dict:
    """Measure the same cells on the pinned reference commit, same machine.

    Checks the commit out into a temporary ``git worktree`` and runs the
    measurement loop in a subprocess whose import path points at the
    worktree's ``src``, so the two measurements share hardware, load and
    Python build — everything except the code under test.
    """
    if _git("cat-file", "-e", f"{REFERENCE_COMMIT}^{{commit}}").returncode:
        # Shallow clone: try to deepen before giving up.
        _git("fetch", "--quiet", "origin", REFERENCE_COMMIT)
        if _git("cat-file", "-e", f"{REFERENCE_COMMIT}^{{commit}}").returncode:
            raise RuntimeError(
                f"reference commit {REFERENCE_COMMIT[:12]} not in the local "
                "object store; clone with full history (CI: checkout "
                "fetch-depth: 0)"
            )
    tmp = Path(tempfile.mkdtemp(prefix="perf-gate-ref-"))
    worktree = tmp / "ref"
    added = _git("worktree", "add", "--detach", str(worktree), REFERENCE_COMMIT)
    if added.returncode:
        shutil.rmtree(tmp, ignore_errors=True)
        raise RuntimeError(f"git worktree add failed: {added.stderr.strip()}")
    try:
        driver = tmp / "driver.py"
        driver.write_text(_REFERENCE_DRIVER)
        env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
        proc = subprocess.run(
            (
                sys.executable,
                str(driver),
                str(worktree / "src"),
                scale_name,
                ",".join(BENCHMARKS),
                ",".join(MECHANISMS),
            ),
            capture_output=True,
            text=True,
            env=env,
        )
        if proc.returncode:
            raise RuntimeError(
                f"reference measurement failed:\n{proc.stderr.strip()}"
            )
        return json.loads(proc.stdout.strip().splitlines()[-1])
    finally:
        _git("worktree", "remove", "--force", str(worktree))
        shutil.rmtree(tmp, ignore_errors=True)
        _git("worktree", "prune")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="max tolerated speedup-ratio regression vs baseline "
             "(default 0.20)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite BENCH_baseline.json from this run instead of gating",
    )
    parser.add_argument(
        "--scale", default="quick",
        help="scale profile to measure (default: quick)",
    )
    args = parser.parse_args(argv)

    report = measure(args.scale)
    print(
        f"perf: measuring reference commit {REFERENCE_COMMIT[:12]} "
        "(pre-overhaul main) on this machine...",
        flush=True,
    )
    reference = measure_reference(args.scale)
    speedup = report["events_per_second"] / reference["events_per_second"]
    report["reference_commit"] = REFERENCE_COMMIT
    report["reference_events_per_second"] = reference["events_per_second"]
    report["reference_wall_seconds"] = reference["wall_seconds"]
    report["speedup_vs_reference"] = round(speedup, 3)
    if reference["total_events"] != report["total_events"]:
        print(
            f"perf: WARNING — reference fired {reference['total_events']} "
            f"events vs {report['total_events']} on HEAD; the workloads have "
            "diverged and the ratio mixes per-event cost with event count",
            file=sys.stderr,
        )

    date = report["recorded_utc"][:10]
    dated_path = REPO_ROOT / f"BENCH_{date}.json"
    dated_path.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"perf: aggregate {report['events_per_second']:,} ev/s over "
        f"{report['total_events']} events in {report['wall_seconds']}s "
        f"(peak RSS {report['peak_rss_kib']} KiB) -> {dated_path.name}"
    )
    print(
        f"perf: reference {reference['events_per_second']:,} ev/s in "
        f"{reference['wall_seconds']}s; speedup {speedup:.2f}x on this machine"
    )

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"perf: baseline re-pinned at {BASELINE_PATH.name}")
        return 0

    if not BASELINE_PATH.exists():
        print(
            "perf: FAIL — no committed BENCH_baseline.json; seed one with "
            "--update-baseline",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    baseline_speedup = baseline.get("speedup_vs_reference")
    if baseline_speedup is None:
        print(
            "perf: FAIL — BENCH_baseline.json predates ratio gating (no "
            "speedup_vs_reference field); re-seed with --update-baseline",
            file=sys.stderr,
        )
        return 1
    floor = baseline_speedup * (1.0 - args.threshold)
    print(
        f"perf: baseline speedup {baseline_speedup:.2f}x "
        f"(recorded {baseline['recorded_utc']}); this run is {speedup:.2f}x, "
        f"gate floor {floor:.2f}x"
    )
    if speedup < floor:
        print(
            f"perf: FAIL — speedup vs the reference commit regressed more "
            f"than {args.threshold:.0%} vs baseline",
            file=sys.stderr,
        )
        return 1
    print("perf: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
