#!/usr/bin/env python3
"""CI performance gate: measure quick-scale fig6 cells against a baseline.

Runs a fixed, representative subset of the Figure 6 sweep *inline* — one
process, no workers, no sweep cache — so the aggregate events/sec is a clean
measurement of per-event simulator cost, then:

* writes ``BENCH_<UTC-date>.json`` (events/sec, wall-clock, peak RSS and the
  per-cell breakdown) next to the baseline, extending the perf trajectory;
* exits 1 if aggregate events/sec regressed more than ``--threshold``
  (default 20%) against the committed ``BENCH_baseline.json``.

``--update-baseline`` rewrites ``BENCH_baseline.json`` from this run instead
of gating (used to seed the baseline, or to deliberately re-pin it after an
accepted perf change — commit the result).
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: The measured cells: a quick-scale fig6 subset that exercises the baseline
#: tag path, the DRAM-aware writeback scan, and the full DBI+AWB stack.
BENCHMARKS = ("lbm", "mcf")
MECHANISMS = ("tadip", "dawb", "dbi+awb")

BASELINE_PATH = REPO_ROOT / "BENCH_baseline.json"


def measure(scale_name: str = "quick") -> dict:
    """Run every cell inline and return the aggregate + per-cell report."""
    from repro.analysis.scaling import SCALES
    from repro.sim.system import run_system

    scale = SCALES[scale_name]
    cells = []
    total_events = 0
    total_wall = 0.0
    for benchmark in BENCHMARKS:
        trace = scale.benchmark_trace(benchmark)
        for mechanism in MECHANISMS:
            config = scale.system_config(mechanism)
            start = time.perf_counter()
            result = run_system(config, [trace])
            wall = time.perf_counter() - start
            total_events += result.events_processed
            total_wall += wall
            cells.append(
                {
                    "benchmark": benchmark,
                    "mechanism": mechanism,
                    "events": result.events_processed,
                    "wall_seconds": round(wall, 4),
                    "events_per_second": round(result.events_processed / wall),
                }
            )
            print(
                f"perf: {benchmark:>6} / {mechanism:<11} "
                f"{result.events_processed:>8} events  {wall:6.3f}s  "
                f"{result.events_processed / wall:>9,.0f} ev/s",
                flush=True,
            )
    # ru_maxrss is KiB on Linux, bytes on macOS.
    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":
        peak_rss //= 1024
    return {
        "recorded_utc": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "scale": scale_name,
        "events_per_second": round(total_events / total_wall),
        "total_events": total_events,
        "wall_seconds": round(total_wall, 3),
        "peak_rss_kib": peak_rss,
        "python": platform.python_version(),
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="max tolerated events/sec regression vs baseline (default 0.20)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite BENCH_baseline.json from this run instead of gating",
    )
    parser.add_argument(
        "--scale", default="quick",
        help="scale profile to measure (default: quick)",
    )
    args = parser.parse_args(argv)

    report = measure(args.scale)
    date = report["recorded_utc"][:10]
    dated_path = REPO_ROOT / f"BENCH_{date}.json"
    dated_path.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"perf: aggregate {report['events_per_second']:,} ev/s over "
        f"{report['total_events']} events in {report['wall_seconds']}s "
        f"(peak RSS {report['peak_rss_kib']} KiB) -> {dated_path.name}"
    )

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"perf: baseline re-pinned at {BASELINE_PATH.name}")
        return 0

    if not BASELINE_PATH.exists():
        print(
            "perf: FAIL — no committed BENCH_baseline.json; seed one with "
            "--update-baseline",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["events_per_second"] * (1.0 - args.threshold)
    ratio = report["events_per_second"] / baseline["events_per_second"]
    print(
        f"perf: baseline {baseline['events_per_second']:,} ev/s "
        f"(recorded {baseline['recorded_utc']}); this run is {ratio:.2f}x, "
        f"gate floor {floor:,.0f} ev/s"
    )
    if report["events_per_second"] < floor:
        print(
            f"perf: FAIL — events/sec regressed more than "
            f"{args.threshold:.0%} vs baseline",
            file=sys.stderr,
        )
        return 1
    print("perf: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
