#!/usr/bin/env python
"""Coverage ratchet: the floor only moves up.

Reads the coverage percentage from a ``coverage.json`` report (pytest-cov's
``--cov-report=json``) and compares it against the committed floor in
``tools/coverage_floor.txt`` — the value ``tools/ci.sh`` passes to
``--cov-fail-under``. When measured coverage beats the floor by more than
the margin (default 1 point), the floor is rewritten to ``measured -
margin`` so future regressions trip CI at the new level. The floor never
moves down: enforcing the old floor when coverage drops is pytest's job
(``--cov-fail-under``), not this tool's.

Exit status is 0 in every expected case — missing report (pytest-cov not
installed), below-floor coverage, floor already tight — so the ratchet
composes with the coverage stage rather than double-reporting its failure.
Only an unreadable/garbled report exits 2.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_FLOOR_FILE = os.path.join(os.path.dirname(__file__),
                                  "coverage_floor.txt")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--coverage-json", default="coverage.json",
        help="pytest-cov JSON report (default: coverage.json)",
    )
    parser.add_argument(
        "--floor-file", default=DEFAULT_FLOOR_FILE,
        help="committed floor file (default: tools/coverage_floor.txt)",
    )
    parser.add_argument(
        "--margin", type=float, default=1.0,
        help="keep the floor this many points below measured coverage "
             "(default: 1.0)",
    )
    args = parser.parse_args()

    if not os.path.exists(args.coverage_json):
        print(
            f"coverage ratchet: no report at {args.coverage_json} "
            "(pytest-cov not installed?); leaving the floor alone"
        )
        return 0
    try:
        with open(args.coverage_json, "r", encoding="utf-8") as handle:
            measured = float(
                json.load(handle)["totals"]["percent_covered"]
            )
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"coverage ratchet: unreadable report: {exc}", file=sys.stderr)
        return 2
    try:
        with open(args.floor_file, "r", encoding="utf-8") as handle:
            floor = int(handle.read().strip())
    except (OSError, ValueError) as exc:
        print(f"coverage ratchet: unreadable floor: {exc}", file=sys.stderr)
        return 2

    candidate = int(measured - args.margin)
    if measured < floor:
        # pytest --cov-fail-under already failed the stage; don't pile on.
        print(
            f"coverage ratchet: measured {measured:.2f}% is below the "
            f"floor ({floor}%); floor unchanged"
        )
        return 0
    if candidate <= floor:
        print(
            f"coverage ratchet: measured {measured:.2f}%, floor {floor}% "
            f"is within {args.margin:g} point(s); floor unchanged"
        )
        return 0
    with open(args.floor_file, "w", encoding="utf-8") as handle:
        handle.write(f"{candidate}\n")
    print(
        f"coverage ratchet: measured {measured:.2f}% beats floor {floor}% "
        f"by more than {args.margin:g} point(s); floor raised to "
        f"{candidate}% — commit {os.path.relpath(args.floor_file)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
